"""Tests for the MiniC compiler: lexer, parser, semantics and code generation."""

import pytest

from repro.compiler.minic import (
    LexerError,
    ParseError,
    SemanticError,
    compile_source,
    parse_source,
    tokenize,
)
from repro.sim import Machine, Outcome


def run_main(source: str, setup=None):
    program = compile_source(source)
    machine = Machine(program)
    if setup:
        setup(machine)
    result = machine.run()
    assert result.outcome == Outcome.COMPLETED, result.fault
    return machine, result


class TestLexer:
    def test_tokenizes_keywords_and_identifiers(self):
        tokens = tokenize("int main() { return 0; }")
        kinds = [token.kind for token in tokens]
        assert kinds[0] == "keyword" and kinds[1] == "ident"
        assert kinds[-1] == "eof"

    def test_hex_and_float_literals(self):
        tokens = tokenize("0xFF 3.5 2e3")
        assert tokens[0].int_value == 255
        assert tokens[1].float_value == 3.5
        assert tokens[2].float_value == 2000.0

    def test_comments_are_skipped(self):
        tokens = tokenize("int x; // comment\n/* block\ncomment */ int y;")
        idents = [token.text for token in tokens if token.kind == "ident"]
        assert idents == ["x", "y"]

    def test_unknown_character_raises(self):
        with pytest.raises(LexerError):
            tokenize("int `x;")


class TestParser:
    def test_parses_function_with_params(self):
        unit = parse_source("int add(int a, int b) { return a + b; } int main() { return add(1, 2); }")
        assert [f.name for f in unit.functions] == ["add", "main"]
        assert len(unit.function("add").params) == 2

    def test_parses_global_array_with_initialiser(self):
        unit = parse_source("int table[4] = {1, 2, 3, 4}; int main() { return table[0]; }")
        assert unit.globals[0].size == 4
        assert list(unit.globals[0].init) == [1, 2, 3, 4]

    def test_reliability_qualifiers(self):
        unit = parse_source("reliable int main() { return 0; } tolerant void k() { }")
        assert not unit.function("main").eligible
        assert unit.function("k").eligible

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse_source("int main() { return 0 }")

    def test_compound_assignment_desugars(self):
        unit = parse_source("int main() { int x = 1; x += 2; return x; }")
        assert unit is not None


class TestSemantics:
    def test_undeclared_variable_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("int main() { return nope; }")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("int f(int a) { return a; } int main() { return f(1, 2); }")

    def test_void_return_with_value_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("void f() { return 3; } int main() { f(); return 0; }")

    def test_bitwise_on_floats_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("int main() { float x = 1.0; return x & 1; }")

    def test_break_outside_loop_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("int main() { break; return 0; }")

    def test_missing_main_rejected(self):
        with pytest.raises(SemanticError):
            compile_source("int helper() { return 1; }")


class TestCodegenExecution:
    def test_arithmetic_and_precedence(self):
        _, result = run_main("int main() { return 2 + 3 * 4 - 6 / 2; }")
        assert result.exit_value == 11

    def test_comparisons_and_logical_ops(self):
        source = """
        int main() {
            int a = 5;
            int b = 9;
            if (a < b && b % 2 == 1) { return 1; }
            return 0;
        }
        """
        _, result = run_main(source)
        assert result.exit_value == 1

    def test_short_circuit_avoids_side_conditions(self):
        source = """
        int guard(int x) {
            if (x == 0) { return 0; }
            return 10 / x;
        }
        int main() {
            int x = 0;
            if (x != 0 && guard(x) > 0) { return 1; }
            return 2;
        }
        """
        _, result = run_main(source)
        assert result.exit_value == 2

    def test_while_loop_factorial(self):
        source = """
        int main() {
            int n = 6;
            int acc = 1;
            while (n > 1) {
                acc = acc * n;
                n = n - 1;
            }
            return acc;
        }
        """
        _, result = run_main(source)
        assert result.exit_value == 720

    def test_for_loop_with_break_and_continue(self):
        source = """
        int main() {
            int total = 0;
            for (int i = 0; i < 100; i = i + 1) {
                if (i % 2 == 0) { continue; }
                if (i > 9) { break; }
                total = total + i;
            }
            return total;
        }
        """
        _, result = run_main(source)
        assert result.exit_value == 1 + 3 + 5 + 7 + 9

    def test_recursion(self):
        source = """
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(12); }
        """
        _, result = run_main(source)
        assert result.exit_value == 144

    def test_global_arrays_and_driver_io(self):
        source = """
        int values[16];
        int results[16];
        tolerant void square_all(int n) {
            for (int i = 0; i < n; i = i + 1) {
                results[i] = values[i] * values[i];
            }
        }
        int main() { square_all(16); return 0; }
        """
        machine, _ = run_main(
            source, setup=lambda m: m.write_global("values", list(range(16))))
        assert machine.read_global("results") == [i * i for i in range(16)]

    def test_local_arrays(self):
        source = """
        int main() {
            int buf[8];
            for (int i = 0; i < 8; i = i + 1) { buf[i] = i * 3; }
            int total = 0;
            for (int i = 0; i < 8; i = i + 1) { total = total + buf[i]; }
            return total;
        }
        """
        _, result = run_main(source)
        assert result.exit_value == sum(i * 3 for i in range(8))

    def test_float_computation_and_intrinsics(self):
        source = """
        int main() {
            float x = 2.0;
            float y = sqrtf(x * 8.0);
            outf(y);
            outf(fabsf(-1.5));
            outf(fminf(3.0, 4.0));
            outf(fmaxf(3.0, 4.0));
            return (int) y;
        }
        """
        _, result = run_main(source)
        assert result.exit_value == 4
        assert result.output(0) == [4.0, 1.5, 3.0, 4.0]

    def test_int_float_conversions(self):
        source = """
        int main() {
            float ratio = (float) 7 / 2.0;
            return (int) (ratio * 10.0);
        }
        """
        _, result = run_main(source)
        assert result.exit_value == 35

    def test_array_parameters(self):
        source = """
        int total(int data[], int n) {
            int acc = 0;
            for (int i = 0; i < n; i = i + 1) { acc = acc + data[i]; }
            return acc;
        }
        int numbers[10];
        int main() { return total(numbers, 10); }
        """
        machine, result = run_main(
            source, setup=lambda m: m.write_global("numbers", list(range(10))))
        assert result.exit_value == 45

    def test_nested_calls_preserve_temporaries(self):
        source = """
        int add(int a, int b) { return a + b; }
        int main() { return add(add(1, 2), add(3, add(4, 5))); }
        """
        _, result = run_main(source)
        assert result.exit_value == 15

    def test_spilled_locals_are_correct(self):
        # More scalar locals than variable registers: the overflow spills to
        # the stack frame and must still behave correctly.
        decls = "\n".join(f"    int v{i} = {i};" for i in range(20))
        adds = " + ".join(f"v{i}" for i in range(20))
        source = f"int main() {{\n{decls}\n    return {adds};\n}}"
        _, result = run_main(source)
        assert result.exit_value == sum(range(20))

    def test_function_eligibility_is_propagated(self):
        source = """
        reliable int helper(int x) { return x + 1; }
        tolerant int kernel(int x) { return x * 2; }
        int main() { return helper(kernel(3)); }
        """
        program = compile_source(source)
        assert not program.functions["helper"].eligible
        assert program.functions["kernel"].eligible
        assert program.functions["main"].eligible
