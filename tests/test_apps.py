"""Integration tests: every benchmark application compiles, runs and is correct."""

import pytest

from repro.apps import APP_ORDER, create_app, small_suite
from repro.apps.blowfish.app import initial_box_constants
from repro.apps.blowfish.reference import BlowfishReference
from repro.fidelity import signal_to_noise_db
from repro.sim import Outcome


@pytest.fixture(scope="module")
def suite():
    return small_suite()


class TestSuiteBasics:
    def test_registry_contains_all_paper_apps(self, suite):
        assert set(suite) == set(APP_ORDER)
        assert set(APP_ORDER) == {"susan", "mpeg", "mcf", "blowfish", "gsm", "art", "adpcm"}

    @pytest.mark.parametrize("name", APP_ORDER)
    def test_golden_run_completes(self, suite, name):
        app = suite[name]
        golden = app.golden(0)
        assert golden.result.outcome == Outcome.COMPLETED
        assert golden.executed > 1000

    @pytest.mark.parametrize("name", APP_ORDER)
    def test_static_analysis_tags_instructions(self, suite, name):
        app = suite[name]
        report = app.tagging_report()
        assert 0 < report.static_tagged < report.static_total
        golden = app.golden(0)
        assert 0.0 < golden.result.statistics.tagged_fraction < 1.0

    @pytest.mark.parametrize("name", APP_ORDER)
    def test_golden_output_scores_perfect(self, suite, name):
        app = suite[name]
        golden = app.golden(0)
        fidelity = app.score_run(golden.result, seed=0)
        assert fidelity is not None and fidelity.acceptable

    def test_create_app_rejects_unknown_names(self):
        with pytest.raises(KeyError):
            create_app("bzip2")


class TestAdpcm:
    def test_decoded_output_tracks_input(self, suite):
        app = suite["adpcm"]
        golden = app.golden(0)
        workload = app.generate_workload(0)
        decoded = app.read_output(golden.result, workload)
        snr = signal_to_noise_db(workload["pcm"], decoded)
        assert snr > 15.0, "ADPCM at 4:1 compression should stay reasonably faithful"


class TestBlowfish:
    def test_roundtrip_recovers_plaintext(self, suite):
        app = suite["blowfish"]
        golden = app.golden(0)
        workload = app.generate_workload(0)
        assert app.read_output(golden.result, workload) == workload["text_bytes"]

    def test_simulated_ciphertext_matches_reference(self, suite):
        app = suite["blowfish"]
        golden = app.golden(0)
        workload = app.generate_workload(0)
        cipher = BlowfishReference(initial_box_constants(18),
                                   initial_box_constants(1024, seed=0x85A308D3),
                                   workload["key"])
        expected = cipher.encrypt_words(workload["words"])
        observed = [int(v) for v in golden.result.memory.read_block(
            golden.result.program.data_address("data_enc"), len(workload["words"]))]
        assert observed == expected

    def test_reference_decrypt_inverts_encrypt(self):
        cipher = BlowfishReference(initial_box_constants(18),
                                   initial_box_constants(1024, seed=0x85A308D3),
                                   [1, 2, 3, 4, 5, 6, 7, 8])
        left, right = cipher.encrypt_block(0x01234567, 0x89ABCDEF)
        assert cipher.decrypt_block(left, right) == (0x01234567, 0x89ABCDEF)


class TestMcf:
    def test_golden_schedule_is_optimal(self, suite):
        app = suite["mcf"]
        golden = app.golden(0)
        workload = app.generate_workload(0)
        fidelity = app.score(golden.reference_output,
                             app.read_output(golden.result, workload), workload)
        assert fidelity.detail["optimal"] == 1.0
        assert fidelity.detail["cost"] == pytest.approx(workload["optimal_cost"])

    def test_multiple_seeds_remain_optimal(self):
        app = create_app("mcf", trips=6)
        for seed in range(3):
            golden = app.golden(seed)
            workload = app.generate_workload(seed)
            fidelity = app.score(golden.reference_output,
                                 app.read_output(golden.result, workload), workload)
            assert fidelity.detail["optimal"] == 1.0


class TestSusan:
    def test_edges_detected_in_structured_scene(self, suite):
        app = suite["susan"]
        golden = app.golden(0)
        workload = app.generate_workload(0)
        edges = app.read_output(golden.result, workload)
        assert any(value > 0 for value in edges), "the synthetic scene has edges"
        assert all(0 <= value <= 255 for value in edges)


class TestMpeg:
    def test_decoded_frames_resemble_input(self, suite):
        app = suite["mpeg"]
        golden = app.golden(0)
        workload = app.generate_workload(0)
        decoded = app.read_output(golden.result, workload)
        for frame, original in zip(decoded, workload["frames"]):
            snr = signal_to_noise_db(original.pixels, frame)
            assert snr > 20.0, "lossy codec should still track the input frame"


class TestGsm:
    def test_decoded_speech_tracks_input(self, suite):
        app = suite["gsm"]
        golden = app.golden(0)
        workload = app.generate_workload(0)
        decoded = app.read_output(golden.result, workload)
        snr = signal_to_noise_db(workload["pcm"], decoded)
        assert snr > 5.0, "LPC codec output should correlate with the input speech"


class TestArt:
    def test_golden_run_recognises_an_object(self, suite):
        app = suite["art"]
        golden = app.golden(0)
        recognition = golden.reference_output
        assert recognition.best_window >= 0
        assert recognition.best_class in (0, 1)
        assert recognition.confidence > 0.0
