"""Differential tests: decoded threaded-code engine vs the seed interpreter.

The pre-decoded engine (:mod:`repro.sim.decode`) must be *bit-identical* to
the seed ``if/elif`` interpreter preserved in :mod:`repro.sim.reference` —
same outcome, same dynamic instruction counts, same outputs, same memory
image, same injection events under the same plan seeds.  Every application
is exercised with and without injections, in both protection modes; the
numpy lockstep batch engine (:mod:`repro.sim.batch`) rides the same
comparisons as a third axis.

A recorded fixture (``tests/fixtures/engine_golden_digests.json``) pins the
golden-run behaviour of the seed interpreter, so an accidental semantic
change to *both* engines is also caught.
"""

import hashlib
import json
import math
import zlib
from pathlib import Path

import pytest

from repro.apps import small_suite
from repro.sim import Machine, ProtectionMode, plan_injections

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "engine_golden_digests.json"

APP_NAMES = ["susan", "mpeg", "mcf", "blowfish", "gsm", "art", "adpcm"]


@pytest.fixture(scope="module")
def suite():
    return small_suite()


def nan_equal(a, b):
    """Recursive equality that treats two NaNs as equal.

    Python's container ``==`` short-circuits on object identity, so two
    *semantically identical* memory images can compare unequal when one
    engine materialises a fresh ``float('nan')`` object.  Injected runs
    legitimately produce NaN cells, so engine comparisons use this helper
    instead of ``==`` for outputs and memory.
    """
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (math.isnan(a) and math.isnan(b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            nan_equal(value, b[key]) for key, value in a.items())
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return (type(a) is type(b) and len(a) == len(b)
                and all(map(nan_equal, a, b)))
    return a == b


def _run_pair(app, injection_seed=None, errors=0, mode=ProtectionMode.NONE):
    """Run the same workload through every engine; return (memory, result) pairs."""
    program = app.program()
    workload = app.generate_workload(0)
    pairs = {}
    for engine in ("reference", "decoded"):
        machine = Machine(program)
        app.apply_workload(machine, workload)
        plan = None
        if injection_seed is not None:
            golden = app.golden(0)
            plan = plan_injections(errors, golden.exposed_count(mode), mode,
                                   seed=injection_seed)
        result = machine.run(
            max_instructions=app.golden(0).watchdog_budget,
            injection=plan,
            engine=engine,
        )
        pairs[engine] = (machine.memory.cells, result)
    # Batch axis: the same plan inputs through the lockstep engine (which
    # degrades to decoded when there is nothing to inject).
    plan = None
    if injection_seed is not None:
        golden = app.golden(0)
        plan = plan_injections(errors, golden.exposed_count(mode), mode,
                               seed=injection_seed)
    result = app.run_once(injection=plan, seed=0, engine="batch")
    pairs["batch"] = (result.memory.cells, result)
    return pairs


def _assert_identical(pairs):
    ref_cells, ref = pairs["reference"]
    for engine in ("decoded", "batch"):
        if engine not in pairs:
            continue
        cells, result = pairs[engine]
        assert result.outcome == ref.outcome
        assert result.executed == ref.executed
        assert result.exit_value == ref.exit_value
        assert result.fault_kind == ref.fault_kind
        assert nan_equal(result.outputs, ref.outputs)
        assert result.exec_counts == ref.exec_counts
        assert result.statistics == ref.statistics
        assert nan_equal(cells, ref_cells)
        if ref.injection is not None:
            assert result.injection.injected_errors == ref.injection.injected_errors
            assert result.injection.events == ref.injection.events


@pytest.mark.parametrize("name", APP_NAMES)
def test_golden_run_is_identical(suite, name):
    _assert_identical(_run_pair(suite[name]))


@pytest.mark.parametrize("name", APP_NAMES)
@pytest.mark.parametrize("mode", [ProtectionMode.PROTECTED, ProtectionMode.UNPROTECTED])
def test_injected_run_is_identical(suite, name, mode):
    pairs = _run_pair(suite[name], injection_seed=1234 + zlib.crc32(name.encode()) % 1000,
                      errors=5, mode=mode)
    _assert_identical(pairs)
    # The plans must actually have fired for the comparison to mean much.
    assert pairs["decoded"][1].injection.requested_errors == 5


@pytest.mark.parametrize("name", APP_NAMES)
def test_catastrophic_paths_are_identical(suite, name):
    """Heavy unprotected injection drives crash/hang paths through both engines.

    Forty unprotected flips over five plan seeds reliably produce a mix of
    completed, crashed and hung runs; every one must match the oracle,
    including the fault message and the partial memory image.
    """
    app = suite[name]
    program = app.program()
    workload = app.generate_workload(0)
    golden = app.golden(0)
    mode = ProtectionMode.UNPROTECTED
    for seed in (1, 2, 3, 4, 5):
        runs = {}
        for engine in ("reference", "decoded"):
            machine = Machine(program)
            app.apply_workload(machine, workload)
            plan = plan_injections(40, golden.exposed_count(mode), mode, seed=seed)
            result = machine.run(max_instructions=golden.watchdog_budget,
                                 injection=plan, engine=engine)
            runs[engine] = (machine.memory.cells, result)
        plan = plan_injections(40, golden.exposed_count(mode), mode, seed=seed)
        result = app.run_once(injection=plan, seed=0, engine="batch")
        runs["batch"] = (result.memory.cells, result)
        _assert_identical(runs)
        ref = runs["reference"][1]
        assert runs["decoded"][1].fault == ref.fault
        assert runs["batch"][1].fault == ref.fault


def test_empty_plan_matches_golden(suite):
    """A zero-target plan must take the fast path and still match the oracle."""
    app = suite["mcf"]
    pairs = _run_pair(app, injection_seed=9, errors=0, mode=ProtectionMode.PROTECTED)
    _assert_identical(pairs)
    assert pairs["decoded"][1].injection.injected_errors == 0


# ----------------------------------------------------------------------
# Recorded seed fixtures.
# ----------------------------------------------------------------------

def _digest(values) -> str:
    payload = repr(values).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def _golden_digest(app) -> dict:
    result = app.golden(0).result
    return {
        "outcome": result.outcome,
        "executed": result.executed,
        "exit_value": result.exit_value,
        "outputs": _digest(sorted(result.outputs.items())),
        "exec_counts": _digest(result.exec_counts),
        "exposed_protected": result.statistics.exposed_protected,
        "exposed_unprotected": result.statistics.exposed_unprotected,
        "tagged": result.statistics.tagged,
    }


def test_golden_runs_match_recorded_fixtures(suite):
    """Decoded-engine golden runs reproduce the recorded seed behaviour."""
    recorded = json.loads(FIXTURE_PATH.read_text())
    observed = {name: _golden_digest(suite[name]) for name in APP_NAMES}
    assert observed == recorded["apps"]
