"""Smoke and end-to-end tests of the ``python -m repro`` CLI.

The end-to-end case is the ISSUE 4 acceptance scenario: a ``sweep
--model data-bit`` mini-grid must produce byte-identical stores on the
serial and process-pool executors, and later commands must pick the
model up from the store's metadata without re-specifying it.
"""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.__main__ import build_parser, main
from repro.core import ShardStore

SMOKE_COMMANDS = ["sweep", "serve", "submit", "status", "analyze", "tables",
                  "figures", "worker"]


def store_bytes(root):
    """Relative path -> file bytes for every file under ``root``."""
    store = ShardStore(root)
    return {
        str(path.relative_to(store.root)): path.read_bytes()
        for path in sorted(store.root.rglob("*")) if path.is_file()
    }


class TestHelpSmoke:
    def test_top_level_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for command in SMOKE_COMMANDS:
            assert command in out

    @pytest.mark.parametrize("command", SMOKE_COMMANDS)
    def test_subcommand_help(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "--help"])
        assert excinfo.value.code == 0
        assert command in capsys.readouterr().out

    @pytest.mark.parametrize("command", ["sweep", "status", "tables", "figures"])
    def test_grid_commands_document_the_model_flag(self, command, capsys):
        with pytest.raises(SystemExit):
            main([command, "--help"])
        out = capsys.readouterr().out
        assert "--model" in out
        assert "control-bit" in out

    def test_unknown_command_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code != 0

    def test_build_parser_is_reusable(self):
        parser = build_parser()
        args = parser.parse_args(["sweep", "--store", "x",
                                  "--model", "multi-bit"])
        assert args.model == "multi-bit"


MINI_GRID = ["--suite", "small", "--runs", "3", "--base-seed", "11",
             "--apps", "adpcm", "--errors", "0", "2", "--no-table2-points"]


class TestSweepModelEndToEnd:
    def test_data_bit_sweep_serial_vs_pool_byte_identical(self, tmp_path,
                                                          capsys):
        serial_root = tmp_path / "serial"
        pool_root = tmp_path / "pool"
        assert main(["sweep", "--store", str(serial_root),
                     "--model", "data-bit", *MINI_GRID]) == 0
        assert main(["sweep", "--store", str(pool_root),
                     "--model", "data-bit", "--executor", "pool",
                     "--parallel", "2", *MINI_GRID]) == 0
        capsys.readouterr()  # drop progress output
        assert store_bytes(serial_root) == store_bytes(pool_root)
        # Shards are filed under the model-qualified name and the meta
        # pins the model.
        store = ShardStore(serial_root, model="data-bit")
        assert store.read_meta()["model"] == "data-bit"
        names = [shard[3].name for shard in store.shards()]
        assert names and all(name.endswith("@data-bit.jsonl")
                             for name in names)

    def test_status_reads_model_from_meta(self, tmp_path, capsys):
        root = tmp_path / "store"
        assert main(["sweep", "--store", str(root), "--model", "data-bit",
                     *MINI_GRID]) == 0
        capsys.readouterr()
        # No --model flag: status must resolve data-bit from meta.json and
        # find the swept cells' records (a wrong model would look at the
        # unqualified shard names and report everything missing).
        assert main(["status", "--store", str(root), *MINI_GRID]) == 0
        assert "cells complete" in capsys.readouterr().out

    def test_table4_cross_model_breakdown(self, tmp_path, capsys):
        assert main(["tables", "--store", str(tmp_path / "unused"),
                     "--tables", "4", "--runs", "2", "--apps", "adpcm",
                     "--models", "control-bit", "memory-bit",
                     "--model-errors", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "memory-bit" in out and "control-bit" in out

    def test_resuming_under_another_model_is_refused(self, tmp_path, capsys):
        root = tmp_path / "store"
        assert main(["sweep", "--store", str(root), "--model", "data-bit",
                     *MINI_GRID]) == 0
        # An explicit different model must hit the meta pin, not silently
        # mix records.
        assert main(["sweep", "--store", str(root), "--model", "control-bit",
                     *MINI_GRID]) == 1
        captured = capsys.readouterr()
        assert "refusing to resume" in captured.err


ADAPTIVE_GRID = ["--suite", "small", "--base-seed", "11", "--apps", "adpcm",
                 "--errors", "0", "2", "--no-table2-points"]
ADAPTIVE_FLAGS = ["--adaptive", "--ci-width", "25", "--min-runs", "2",
                  "--max-runs", "8"]


class TestAdaptiveSweepEndToEnd:
    """ISSUE 5 tentpole surfaced through the CLI."""

    def test_adaptive_sweep_pins_rule_and_resumes_flagless(self, tmp_path,
                                                           capsys):
        root = tmp_path / "adaptive"
        assert main(["sweep", "--store", str(root),
                     *ADAPTIVE_FLAGS, *ADAPTIVE_GRID]) == 0
        meta = ShardStore(root).read_meta()
        assert meta["schema"] == "sweep-store-v2-adaptive"
        assert meta["ci_width"] == 25.0
        assert "runs_per_cell" not in meta
        capsys.readouterr()
        # Resume with no adaptive flags at all: the rule comes from meta
        # and the complete store is a no-op.
        assert main(["sweep", "--store", str(root), *ADAPTIVE_GRID]) == 0
        assert "0 runs executed" in capsys.readouterr().out

    def test_adaptive_serial_vs_pool_byte_identical(self, tmp_path, capsys):
        serial_root = tmp_path / "serial"
        pool_root = tmp_path / "pool"
        assert main(["sweep", "--store", str(serial_root),
                     *ADAPTIVE_FLAGS, *ADAPTIVE_GRID]) == 0
        assert main(["sweep", "--store", str(pool_root), "--executor", "pool",
                     "--parallel", "2", "--chunk-size", "3",
                     *ADAPTIVE_FLAGS, *ADAPTIVE_GRID]) == 0
        capsys.readouterr()
        assert store_bytes(serial_root) == store_bytes(pool_root)

    def test_status_shows_ci_widths(self, tmp_path, capsys):
        root = tmp_path / "adaptive"
        assert main(["sweep", "--store", str(root),
                     *ADAPTIVE_FLAGS, *ADAPTIVE_GRID]) == 0
        capsys.readouterr()
        assert main(["status", "--store", str(root), *ADAPTIVE_GRID]) == 0
        out = capsys.readouterr().out
        assert "failure CI ±" in out
        assert "target CI ±25" in out

    def test_explicit_runs_conflicts_with_adaptive_mode(self, tmp_path,
                                                        capsys):
        root = tmp_path / "adaptive"
        assert main(["sweep", "--store", str(root),
                     *ADAPTIVE_FLAGS, *ADAPTIVE_GRID]) == 0
        capsys.readouterr()
        # --runs on an adaptive store (or with --adaptive) must be refused,
        # not silently ignored: the stopping rule sizes the cells.
        assert main(["sweep", "--store", str(root), "--runs", "100",
                     *ADAPTIVE_GRID]) == 2
        assert "--min-runs/--max-runs" in capsys.readouterr().err
        assert main(["sweep", "--store", str(tmp_path / "fresh"),
                     "--runs", "20", *ADAPTIVE_FLAGS, *ADAPTIVE_GRID]) == 2
        capsys.readouterr()
        # status has the same trap: done/total would be read against the
        # rule's cap, not the requested count.
        assert main(["status", "--store", str(root), "--runs", "100",
                     *ADAPTIVE_GRID]) == 2
        assert "--min-runs/--max-runs" in capsys.readouterr().err
        # tables/figures would feed --runs into the completeness check and
        # reject converged cells with an unfollowable "resume" hint.
        assert main(["figures", "--store", str(root), "--runs", "100",
                     "--figures", "figure1", *ADAPTIVE_GRID]) == 2
        assert main(["tables", "--store", str(root), "--runs", "100",
                     "--tables", "2", *ADAPTIVE_GRID]) == 2
        assert "adaptive store" in capsys.readouterr().err

    def test_sweep_help_documents_adaptive_mode(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--help"])
        out = capsys.readouterr().out
        assert "--adaptive" in out and "--ci-width" in out


class TestJsonOutput:
    """ISSUE 8 satellite: every subcommand is scriptable via --json."""

    def test_sweep_json_summary_is_the_job_payload(self, tmp_path, capsys):
        assert main(["sweep", "--store", str(tmp_path / "store"), "--json",
                     *MINI_GRID]) == 0
        job = json.loads(capsys.readouterr().out)
        assert job["state"] == "complete"
        assert job["report"]["runs_executed"] == 12
        assert job["executors_started"] >= 1
        assert job["spec"]["apps"] == ["adpcm"]

    def test_status_json_lists_cells(self, tmp_path, capsys):
        root = tmp_path / "store"
        assert main(["sweep", "--store", str(root), *MINI_GRID]) == 0
        capsys.readouterr()
        assert main(["status", "--store", str(root), "--json",
                     *MINI_GRID]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cells_complete"] == payload["cells_total"] == 4
        assert payload["adaptive"] is None

    def test_tables_and_figures_json(self, tmp_path, capsys):
        root = tmp_path / "store"
        grid = ["--suite", "small", "--runs", "2", "--base-seed", "11",
                "--apps", "susan", "--errors", "0", "--no-table2-points"]
        assert main(["sweep", "--store", str(root), *grid]) == 0
        capsys.readouterr()
        assert main(["figures", "--store", str(root), "--json",
                     "--figures", "figure1", *grid]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["figures"][0]["name"] == "figure1"
        assert main(["tables", "--store", str(root), "--json",
                     "--tables", "1", *grid]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "Table 1" in payload["tables"][0]["text"]

    def test_caught_errors_become_json_objects(self, tmp_path, capsys):
        # MissingCellError (exit 1): a table the store cannot render yet.
        assert main(["tables", "--store", str(tmp_path / "empty"),
                     "--tables", "2", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "MissingCellError"
        assert "sweep" in payload["error"]

    def test_usage_errors_become_json_objects(self, tmp_path, capsys):
        # Usage error (exit 2): --runs against adaptive mode.
        assert main(["sweep", "--store", str(tmp_path / "store"), "--json",
                     "--adaptive", "--runs", "5", *ADAPTIVE_GRID]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "UsageError"
        assert "--min-runs/--max-runs" in payload["error"]

    def test_unreachable_daemon_is_a_json_error(self, capsys):
        assert main(["submit", "--url", "http://127.0.0.1:9", "--json",
                     *MINI_GRID]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "ConnectionError"
        assert "unreachable" in payload["error"]


class TestAnalyzeCommand:
    """ISSUE 10: the static susceptibility oracle's CLI surface."""

    def test_json_report_is_byte_identical_across_invocations(self, capsys):
        assert main(["analyze", "--app", "susan", "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["analyze", "--app", "susan", "--json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["app"] == "susan"
        assert payload["schema_version"] == 1
        assert payload["site_count"] == len(payload["sites"])

    def test_text_mode_renders_a_ranked_site_table(self, capsys):
        assert main(["analyze", "--app", "adpcm", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "adpcm" in out
        assert "Fate" in out

    def test_ablation_flags_change_the_report(self, capsys):
        assert main(["analyze", "--app", "susan", "--json"]) == 0
        default = capsys.readouterr().out
        assert main(["analyze", "--app", "susan", "--json",
                     "--protect-addresses", "--track-memory"]) == 0
        ablated = capsys.readouterr().out
        assert default != ablated

    def test_unknown_app_is_a_caught_error(self, capsys):
        assert main(["analyze", "--app", "frobnicate", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "ValueError"
        assert "unknown app" in payload["error"]

    def test_state_kind_model_is_refused_by_the_parser(self, capsys):
        # memory-bit corrupts state, not results; the flag choices
        # deliberately include it so the refusal is a clear ValueError
        # from the oracle rather than an argparse usage blob.
        assert main(["analyze", "--app", "susan",
                     "--model", "memory-bit", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "ValueError"
        assert "state" in payload["error"]


class TestFlagUnification:
    """ISSUE 8 satellite: one --secret / --listen spelling everywhere,
    legacy forms keep working but warn."""

    def test_sweep_worker_secret_warns_but_works(self, tmp_path, capsys):
        assert main(["sweep", "--store", str(tmp_path / "store"),
                     "--worker-secret", "hunter2", *MINI_GRID]) == 0
        captured = capsys.readouterr()
        assert "--worker-secret is deprecated; use --secret" in captured.err
        assert "4/4 cells complete" in captured.out

    def test_sweep_secret_is_silent(self, tmp_path, capsys):
        assert main(["sweep", "--store", str(tmp_path / "store"),
                     "--secret", "hunter2", *MINI_GRID]) == 0
        assert "deprecated" not in capsys.readouterr().err

    def test_worker_host_port_warn(self, capsys):
        # A malformed --listen aborts before binding, so this exercises
        # the deprecation path without starting a server.
        assert main(["worker", "--host", "127.0.0.1",
                     "--listen", "not-an-address"]) == 2
        err = capsys.readouterr().err
        assert "--host/--port are deprecated; use --listen" in err

    def test_serve_rejects_malformed_listen(self, tmp_path, capsys):
        assert main(["serve", "--store", str(tmp_path / "cache"),
                     "--listen", "nope"]) == 2
        assert "error:" in capsys.readouterr().err


class TestServeSubmitEndToEnd:
    """The service quickstart: `serve` in a subprocess, `submit` against
    it through the real CLI."""

    def test_submit_runs_a_campaign_through_a_live_daemon(self, tmp_path,
                                                          capsys):
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[1] / "src"
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--store", str(tmp_path / "cache"), "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE, text=True, env=env)
        try:
            banner = daemon.stdout.readline().strip()
            url = re.search(r"repro-service listening on (http://\S+)$",
                            banner).group(1)
            assert main(["submit", "--url", url, "--json", *MINI_GRID]) == 0
            job = json.loads(capsys.readouterr().out)
            assert job["state"] == "complete"
            assert job["report"]["cells_complete"] == 4
            # Resubmitting through the CLI coalesces server-side: the
            # daemon answers from its cache, no new runs.
            assert main(["submit", "--url", url, "--json", *MINI_GRID]) == 0
            job = json.loads(capsys.readouterr().out)
            assert job["report"]["runs_executed"] == 12  # same job payload
            assert job["state"] == "complete"
        finally:
            daemon.terminate()
            daemon.wait(timeout=10)
