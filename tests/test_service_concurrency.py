"""Concurrent-lane scheduler + durable-job tests (ISSUE 9).

Exercises the daemon's concurrency contract from every side: the
journal's fold semantics as a unit, the cross-process store advisory
lock, lane parallelism and same-store serialization against a scheduler
whose jobs are deterministic sleeps, a real-workload stress run whose
stores must stay byte-identical to serial references, SIGKILL
crash/restart durability through the journal, and the drain/503
admission contract.
"""

import json
import os
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import submit
from repro.api import status as api_status
from repro.core import ShardStore
from repro.core.store import advisory_lock
from repro.service import CampaignService, CampaignSpec, JobJournal, ServiceClient
from repro.service.client import ServiceError
from repro.service.daemon import default_lanes
from repro.sim import ProtectionMode

SRC_DIR = Path(__file__).resolve().parents[1] / "src"

#: Tiny adpcm grid (4 cells x 3 runs): fast enough to sweep repeatedly.
QUICK = dict(suite="small", runs_per_cell=3, base_seed=11, apps=("adpcm",),
             errors=(0, 2), include_table2=False)


def quick_spec(**overrides) -> CampaignSpec:
    return CampaignSpec(**{**QUICK, **overrides})


def store_bytes(store: ShardStore):
    """Record payload of a store: path -> bytes, control files excluded."""
    return {
        str(path.relative_to(store.root)): path.read_bytes()
        for path in sorted(store.root.rglob("*"))
        if path.is_file() and path.name != "fleet.json"
        and not path.name.startswith(".")
    }


class HealthPoller:
    """Samples ``/v1/health`` on a thread, keeping the busiest sighting."""

    def __init__(self, url: str, poll: float = 0.02) -> None:
        self.client = ServiceClient(url)
        self.poll = poll
        self.max_busy = 0
        self.samples = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                health = self.client.health()
            except (ConnectionError, ServiceError):
                continue
            self.samples += 1
            self.max_busy = max(self.max_busy, health["lanes"]["busy"])
            time.sleep(self.poll)

    def __enter__(self) -> "HealthPoller":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=10)


# ----------------------------------------------------------------------
# JobJournal: fold semantics, torn tails, refusal handling.
# ----------------------------------------------------------------------
class TestJobJournal:
    def test_submit_start_finish_folds_to_a_terminal_job(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        spec = quick_spec()
        journal.record("submit", spec.cache_key, spec=spec.to_json())
        journal.record("start", spec.cache_key, lane=2)
        journal.record("finish", spec.cache_key, state="complete",
                       report={"runs_executed": 12}, executors_started=1,
                       error=None)
        replay = journal.replay()
        assert replay.events == 3 and replay.skipped == 0
        (job,) = replay.jobs
        assert job.state == "complete" and not job.interrupted
        assert job.spec == spec
        assert job.report == {"runs_executed": 12}
        assert job.executors_started == 1
        assert job.finished is not None

    @pytest.mark.parametrize("events", [
        ("submit",),
        ("submit", "start"),
    ])
    def test_jobs_without_a_terminal_event_are_interrupted(self, tmp_path,
                                                           events):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        spec = quick_spec()
        for event in events:
            extra = ({"spec": spec.to_json()} if event == "submit"
                     else {"lane": 0})
            journal.record(event, spec.cache_key, **extra)
        (job,) = journal.replay().jobs
        assert job.interrupted
        assert job.state == ("running" if "start" in events else "queued")

    def test_fail_event_folds_to_a_failed_job(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        spec = quick_spec()
        journal.record("submit", spec.cache_key, spec=spec.to_json())
        journal.record("start", spec.cache_key, lane=0)
        journal.record("fail", spec.cache_key, error="boom")
        (job,) = journal.replay().jobs
        assert job.state == "failed" and not job.interrupted
        assert job.error == "boom"

    def test_resubmit_after_finish_resets_to_queued_in_place(self, tmp_path):
        # The daemon's re-verification path journals a second submit for
        # a restored terminal job; the fold must return it to the queue.
        journal = JobJournal(tmp_path / "jobs.jsonl")
        spec = quick_spec()
        journal.record("submit", spec.cache_key, spec=spec.to_json())
        journal.record("finish", spec.cache_key, state="complete",
                       report={"runs_executed": 12}, executors_started=1,
                       error=None)
        journal.record("submit", spec.cache_key, spec=spec.to_json())
        replay = journal.replay()
        (job,) = replay.jobs
        assert job.interrupted and job.state == "queued"
        assert job.report == {} and job.executors_started == 0

    def test_torn_trailing_line_is_skipped_then_repaired(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(path)
        spec = quick_spec()
        journal.record("submit", spec.cache_key, spec=spec.to_json())
        with path.open("ab") as handle:
            handle.write(b'{"event":"start","job":"tor')  # mid-write kill
        replay = journal.replay()
        assert len(replay.jobs) == 1 and replay.events == 1
        # The next append (writer-owned repair) truncates the torn tail.
        journal.record("start", spec.cache_key, lane=1)
        lines = path.read_bytes().decode("utf-8").splitlines()
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)
        (job,) = journal.replay().jobs
        assert job.state == "running" and job.lane == 1

    def test_unreadable_lines_are_counted_not_fatal(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(path)
        good = quick_spec()
        journal.record("submit", good.cache_key, spec=good.to_json())
        with path.open("a", encoding="utf-8") as handle:
            # A spec this build refuses, a transition without a submit,
            # an unknown event, and a non-object line.
            handle.write(json.dumps({"event": "submit", "job": "x",
                                     "spec": {"bogus_field": 1}}) + "\n")
            handle.write(json.dumps({"event": "finish", "job": "orphan",
                                     "state": "complete"}) + "\n")
            handle.write(json.dumps({"event": "vanish",
                                     "job": good.cache_key}) + "\n")
            handle.write('"not an object"\n')
        replay = journal.replay()
        assert len(replay.jobs) == 1
        assert replay.jobs[0].spec == good
        assert replay.events == 5
        assert replay.skipped == 4

    def test_submit_whose_key_mismatches_its_spec_is_skipped(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        journal = JobJournal(path)
        spec = quick_spec()
        with path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps({"event": "submit", "job": "wrong-key",
                                     "spec": spec.to_json()}) + "\n")
        replay = journal.replay()
        assert replay.jobs == [] and replay.skipped == 1

    def test_unknown_event_kind_is_refused_at_write_time(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        with pytest.raises(ValueError, match="unknown journal event"):
            journal.record("pause", "some-key")

    def test_stats_track_appends_without_rereading(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        spec = quick_spec()
        assert journal.stats()["events"] == 0
        journal.record("submit", spec.cache_key, spec=spec.to_json())
        journal.record("start", spec.cache_key, lane=0)
        stats = journal.stats()
        assert stats["events"] == 2
        assert stats["path"].endswith("jobs.jsonl")


# ----------------------------------------------------------------------
# The cross-process store advisory lock.
# ----------------------------------------------------------------------
class TestAdvisoryLock:
    def test_exclusive_lock_serializes_critical_sections(self, tmp_path):
        # Two writers (each with its own file description, as two
        # daemons would have) must never be inside the lock at once.
        store = ShardStore(tmp_path / "store")
        intervals = []

        def writer():
            with store.exclusive_lock():
                start = time.monotonic()
                time.sleep(0.05)
                intervals.append((start, time.monotonic()))

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(intervals) == 4
        intervals.sort()
        for (_, end), (start, _) in zip(intervals, intervals[1:]):
            assert start >= end, "two lock holders overlapped"

    def test_lock_file_is_dot_named_and_invisible_to_byte_identity(
            self, tmp_path):
        store = ShardStore(tmp_path / "store")
        with store.exclusive_lock():
            pass
        assert (store.root / ".lock").exists()
        assert store_bytes(store) == {}

    def test_advisory_lock_creates_parent_directories(self, tmp_path):
        with advisory_lock(tmp_path / "deep" / "nested" / ".lock"):
            assert (tmp_path / "deep" / "nested" / ".lock").exists()


# ----------------------------------------------------------------------
# Lane parallelism against deterministic sleeping jobs.
# ----------------------------------------------------------------------
NAP = 0.4


@pytest.fixture()
def sleepy_jobs(monkeypatch):
    """Replace job execution with a fixed nap (scheduler-only tests)."""

    def _nap(self, job):
        time.sleep(NAP)
        job.report = {"cells_total": 1, "cells_complete": 1,
                      "runs_executed": 0, "runs_reused": 0,
                      "runs_discarded": 0, "fleet": []}
        job.state = "complete"

    monkeypatch.setattr(CampaignService, "_run_job", _nap)


class TestLaneParallelism:
    def test_disjoint_store_jobs_overlap_across_lanes(self, tmp_path,
                                                      sleepy_jobs):
        daemon = CampaignService(tmp_path / "cache", lanes=4)
        daemon.start_in_background()
        try:
            client = ServiceClient(daemon.url)
            specs = [quick_spec(base_seed=100 + i) for i in range(4)]
            assert len({spec.store_key for spec in specs}) == 4
            started = time.monotonic()
            with HealthPoller(daemon.url) as poller:
                keys = [client.submit(spec)["job"] for spec in specs]
                for key in keys:
                    client.wait(key, timeout=60, poll=0.02)
            elapsed = time.monotonic() - started
            # The acceptance bar: 4 disjoint jobs on 4 lanes must beat
            # 0.8x their sequential sum by a wide margin.
            assert elapsed < 0.8 * 4 * NAP
            assert poller.max_busy > 1, "lanes never overlapped"
        finally:
            daemon.shutdown()

    def test_same_store_jobs_serialize_on_the_store_lock(self, tmp_path,
                                                         sleepy_jobs):
        daemon = CampaignService(tmp_path / "cache", lanes=4)
        daemon.start_in_background()
        try:
            client = ServiceClient(daemon.url)
            # Same content (one store), different coverage (two jobs).
            narrow = quick_spec(errors=(0,))
            wide = quick_spec(errors=(0, 2))
            assert narrow.store_key == wide.store_key
            assert narrow.cache_key != wide.cache_key
            started = time.monotonic()
            keys = [client.submit(narrow)["job"], client.submit(wide)["job"]]
            for key in keys:
                client.wait(key, timeout=60, poll=0.02)
            elapsed = time.monotonic() - started
            assert elapsed >= 2 * NAP * 0.9, \
                "same-store jobs ran concurrently"
        finally:
            daemon.shutdown()

    def test_lane_count_is_validated_and_defaulted(self, tmp_path):
        with pytest.raises(ValueError, match="lanes"):
            CampaignService(tmp_path / "cache", lanes=0)
        assert CampaignService(tmp_path / "cache").lanes == default_lanes()
        assert 1 <= default_lanes() <= 4


# ----------------------------------------------------------------------
# Stress: real campaigns across lanes stay byte-identical to serial.
# ----------------------------------------------------------------------
class TestConcurrentLanes:
    def test_overlapping_and_disjoint_stores_never_double_compute(
            self, tmp_path):
        # Serial references, one per distinct store content.
        references = {}
        for seed in (11, 12):
            root = tmp_path / f"serial-{seed}"
            submit(quick_spec(base_seed=seed), root)
            references[seed] = store_bytes(ShardStore(root))

        daemon = CampaignService(tmp_path / "cache", lanes=4)
        daemon.start_in_background()
        try:
            client = ServiceClient(daemon.url)
            # Two disjoint stores; per store, two coverage-overlapping
            # jobs racing for the same cells.
            specs = [quick_spec(base_seed=seed, errors=errors)
                     for seed in (11, 12)
                     for errors in ((0,), (0, 2))]
            with HealthPoller(daemon.url) as poller:
                keys = [client.submit(spec)["job"] for spec in specs]
                finals = [client.wait(key, timeout=600, poll=0.05)
                          for key in keys]
            assert all(final["state"] == "complete" for final in finals)
            # Disjoint stores genuinely overlapped on the lanes.
            assert poller.max_busy > 1, "lanes never overlapped"
            # Per store: 4 cells x 3 runs computed exactly once across
            # both racing jobs — the per-store locks are the guarantee.
            for seed in (11, 12):
                executed = sum(
                    final["report"]["runs_executed"]
                    for spec, final in zip(specs, finals)
                    if spec.base_seed == seed)
                assert executed == 12, \
                    f"store for seed {seed} computed {executed} runs"
                daemon_store = daemon.store_for(quick_spec(base_seed=seed))
                assert store_bytes(daemon_store) == references[seed]
        finally:
            daemon.shutdown()


# ----------------------------------------------------------------------
# Crash/restart durability: SIGKILL mid-job, journal replay, cache hit.
# ----------------------------------------------------------------------
CRASH_SPEC = CampaignSpec(suite="small", runs_per_cell=10, base_seed=47,
                          apps=("adpcm",), modes=("protected",),
                          errors=(3,), include_table2=False)


def spawn_daemon(root: Path, *extra) -> "tuple":
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", str(root),
         "--listen", "127.0.0.1:0", *extra],
        stdout=subprocess.PIPE, text=True, env=env,
    )
    banner = process.stdout.readline().strip()
    match = re.search(r"listening on (http://\S+)$", banner)
    assert match, f"no service banner, got {banner!r}"
    return process, match.group(1)


class TestCrashDurability:
    def test_sigkill_mid_job_resumes_to_a_byte_identical_store(
            self, tmp_path):
        serial_root = tmp_path / "serial"
        submit(CRASH_SPEC, serial_root)
        reference = store_bytes(ShardStore(serial_root))

        root = tmp_path / "cache"
        shard = (root / "stores" / CRASH_SPEC.store_dir
                 / "adpcm" / "protected-e3.jsonl")

        # Daemon 1: submit, wait for the first record to hit disk
        # (--chunk-size 1 appends run by run), then SIGKILL mid-job.
        process, url = spawn_daemon(root, "--chunk-size", "1")
        try:
            client = ServiceClient(url)
            job = client.submit(CRASH_SPEC)
            assert job["state"] in ("queued", "running")
            deadline = time.monotonic() + 120
            while not (shard.exists() and shard.stat().st_size > 0):
                assert time.monotonic() < deadline, \
                    "no record appeared before the crash window"
                time.sleep(0.01)
        finally:
            process.kill()
            process.wait(timeout=30)

        # Daemon 2: the journal replays the interrupted job, re-enqueues
        # it, and the missing-index resume path completes the store.
        process, url = spawn_daemon(root, "--chunk-size", "1")
        try:
            client = ServiceClient(url)
            assert client.health()["journal"]["jobs_resumed"] >= 1
            final = client.wait(CRASH_SPEC.cache_key, timeout=600)
            assert final["state"] == "complete"
            report = final["report"]
            assert report["runs_executed"] + report["runs_reused"] == 10
            daemon_store = ShardStore(root / "stores" / CRASH_SPEC.store_dir)
            assert store_bytes(daemon_store) == reference
        finally:
            process.terminate()
            process.wait(timeout=30)

        # Daemon 3: the finished job is journal-restored (no recompute),
        # and resubmitting it re-verifies as a pure cache hit — zero
        # runs executed, zero executor backends constructed.
        process, url = spawn_daemon(root, "--chunk-size", "1")
        try:
            client = ServiceClient(url)
            assert client.health()["journal"]["jobs_restored"] >= 1
            restored = client.status(CRASH_SPEC.cache_key)
            assert restored["state"] == "complete"
            assert restored["restored"] is True
            assert restored["report"]["runs_executed"] + \
                restored["report"]["runs_reused"] == 10
            resubmitted = client.submit(CRASH_SPEC)
            assert resubmitted["state"] == "queued"
            final = client.wait(CRASH_SPEC.cache_key, timeout=300)
            assert final["state"] == "complete"
            assert final["report"]["runs_executed"] == 0
            assert final["report"]["runs_reused"] == 10
            assert final["executors_started"] == 0
            assert final["restored"] is False
            assert store_bytes(ShardStore(root / "stores"
                                          / CRASH_SPEC.store_dir)) \
                == reference
        finally:
            process.terminate()
            process.wait(timeout=30)


# ----------------------------------------------------------------------
# Drain and the api.status remote path.
# ----------------------------------------------------------------------
class TestDrainAndRemoteStatus:
    def test_drain_refuses_new_campaigns_with_503(self, tmp_path,
                                                  sleepy_jobs):
        daemon = CampaignService(tmp_path / "cache", lanes=2)
        daemon.start_in_background()
        try:
            client = ServiceClient(daemon.url)
            accepted = client.submit(quick_spec(base_seed=200))
            daemon.drain()
            assert client.health()["status"] == "draining"
            with pytest.raises(ServiceError, match="draining") as excinfo:
                client.submit(quick_spec(base_seed=201))
            assert excinfo.value.status == 503
            # Already-admitted work still runs to completion.
            final = client.wait(accepted["job"], timeout=60, poll=0.02)
            assert final["state"] == "complete"
        finally:
            daemon.shutdown()

    def test_api_status_queries_a_live_daemon(self, tmp_path, sleepy_jobs):
        daemon = CampaignService(tmp_path / "cache", lanes=2)
        daemon.start_in_background()
        try:
            client = ServiceClient(daemon.url)
            spec = quick_spec(base_seed=300)
            client.wait(client.submit(spec)["job"], timeout=60, poll=0.02)
            payload = api_status(url=daemon.url, spec=spec)
            assert payload["job"] == spec.cache_key
            assert payload["state"] == "complete"
            assert payload["restored"] is False and payload["lane"] in (0, 1)
            listing = api_status(url=daemon.url)
            assert [entry["job"] for entry in listing] == [spec.cache_key]
        finally:
            daemon.shutdown()

    def test_health_reports_lanes_queue_and_journal(self, tmp_path):
        daemon = CampaignService(tmp_path / "cache", lanes=3)
        daemon.start_in_background()
        try:
            health = ServiceClient(daemon.url).health()
            assert health["status"] == "ok"
            assert health["lanes"] == {"total": 3, "busy": 0, "jobs": []}
            assert health["queue_depth"] == 0
            journal = health["journal"]
            assert journal["events"] == 0
            assert journal["jobs_resumed"] == 0
            assert journal["jobs_restored"] == 0
            assert journal["skipped"] == 0
        finally:
            daemon.shutdown()


# ----------------------------------------------------------------------
# In-process restart: the journal round-trips through a real daemon.
# ----------------------------------------------------------------------
class TestJournalThroughTheDaemon:
    def test_restart_restores_the_job_table(self, tmp_path):
        spec = quick_spec()
        daemon = CampaignService(tmp_path / "cache", lanes=2)
        daemon.start_in_background()
        try:
            client = ServiceClient(daemon.url)
            client.wait(client.submit(spec)["job"], timeout=300)
        finally:
            daemon.shutdown()

        reborn = CampaignService(tmp_path / "cache", lanes=2)
        reborn.start_in_background()
        try:
            client = ServiceClient(reborn.url)
            jobs = client.jobs()
            assert [job["job"] for job in jobs] == [spec.cache_key]
            assert jobs[0]["state"] == "complete"
            assert jobs[0]["restored"] is True
            assert client.health()["journal"]["jobs_restored"] == 1
            # Restored status answers from the journal without touching
            # an executor: results still come off the shared store.
            records = client.results(spec.cache_key, "adpcm",
                                     "protected", 2)["records"]
            store = reborn.store_for(spec)
            assert records == [
                record.to_json() for record
                in store.load_records("adpcm", ProtectionMode.PROTECTED, 2)]
        finally:
            reborn.shutdown()
