"""Tier-1 promotion of the tagging-ablation containment assertions.

The nightly ablation benchmark (``benchmarks/test_ablation_tagging.py``)
checks that each extra protection knob only ever *removes* taggable
instructions, via dynamic tagged fractions.  This fast test pins the
same monotonicity set-wise on the static tagged sets — strictly stronger
than the fraction ordering, and cheap enough to fail in tier 1 before a
tagging regression reaches the bench.  Computed from the def-use facts
(:func:`~repro.compiler.passes.compute_def_use`), which are asserted
equal to the tagging pass's decisions in ``tests/test_analysis.py``, so
no test mutates the apps' canonical tags.
"""

import pytest

from repro.apps import small_suite
from repro.compiler.passes import ControlTaggingPass, compute_def_use


def _tagged_sets(program):
    """Tag decisions under each ablation option, from the def-use facts."""
    default = compute_def_use(program).tagged_sites()
    addresses = compute_def_use(program,
                                protect_addresses=True).tagged_sites()
    memory = compute_def_use(program, protect_addresses=True,
                             track_memory=True).tagged_sites()
    no_stack = compute_def_use(program).tagged_sites(
        protect_stack_registers=False)
    return default, addresses, memory, no_stack


@pytest.mark.parametrize("name", ["susan", "adpcm"])
def test_option_tags_are_setwise_contained(name):
    program = small_suite()[name].program()
    default, addresses, memory, no_stack = _tagged_sets(program)
    # Every knob is monotone: more conservative = fewer tagged sites.
    assert memory <= addresses <= default <= no_stack
    # And the knobs actually do something on real programs.
    assert memory < default < no_stack


@pytest.mark.parametrize("name", ["susan", "adpcm"])
def test_fraction_ordering_follows_from_containment(name):
    """The exact ordering the nightly bench asserts on dynamic fractions,
    pinned here on static counts."""
    program = small_suite()[name].program()
    default, addresses, memory, no_stack = _tagged_sets(program)
    assert len(memory) <= len(addresses) <= len(default) <= len(no_stack)


def test_facts_match_mutating_pass_under_options():
    """The def-use sets above stand in for the real pass — prove it for
    one app under the most intricate option combination (track_memory),
    restoring the canonical tags afterwards."""
    program = small_suite()["adpcm"].program()
    try:
        report = ControlTaggingPass(protect_addresses=True,
                                    track_memory=True).run(program)
        facts = compute_def_use(program, protect_addresses=True,
                                track_memory=True)
        assert facts.tagged_sites() == frozenset(report.tagged_indices)
    finally:
        ControlTaggingPass().run(program)
