"""Tests for the compiler analyses: CFG, data-flow, call graph, control tagging."""

from repro.assembler import ProgramBuilder, parse_assembly
from repro.compiler.minic import compile_source
from repro.compiler.passes import (
    build_call_graph,
    build_cfg,
    clear_tags,
    compute_liveness,
    compute_reaching_definitions,
    tag_control_data,
)
from repro.isa import Opcode, R


def loop_program():
    """A small loop: i counts to 10, payload multiplications are pure data."""
    builder = ProgramBuilder()
    with builder.function("main"):
        builder.data("sink", 16)
        builder.la(R(10), "sink")
        builder.li(R(8), 0)          # i
        builder.li(R(9), 10)         # n
        builder.label("loop")
        builder.mul(R(11), R(8), R(8))   # payload (data only)
        builder.add(R(12), R(10), R(8))  # address
        builder.sw(R(11), R(12), 0)
        builder.addi(R(8), R(8), 1)      # induction variable
        builder.blt(R(8), R(9), "loop")
        builder.halt()
    return builder.build()


class TestCfg:
    def test_blocks_and_edges(self):
        cfg = build_cfg(loop_program())
        assert len(cfg.blocks) >= 2
        loop_block = cfg.blocks[cfg.block_of_index[loop_program().labels["loop"]]]
        # Find the block ending with the backward branch.
        branch_block = next(
            block for block in cfg.blocks
            if cfg.program.instructions[block.end - 1].op is Opcode.BLT
        ) if False else None
        # Simpler: every block's successors point at valid blocks.
        for block in cfg.blocks:
            for successor in block.successors:
                assert 0 <= successor < len(cfg.blocks)
        assert loop_block is not None

    def test_loop_has_back_edge(self):
        program = loop_program()
        cfg = build_cfg(program)
        loop_start = cfg.block_of_index[program.labels["loop"]]
        has_back_edge = any(
            loop_start in block.successors and block.start >= program.labels["loop"]
            for block in cfg.blocks
        )
        assert has_back_edge

    def test_interprocedural_call_and_return_edges(self):
        source = """
        int helper(int x) { return x + 1; }
        int main() { return helper(41); }
        """
        program = compile_source(source)
        cfg = build_cfg(program, interprocedural=True)
        assert "helper" in cfg.call_sites
        helper_entry_block = cfg.block_of_index[program.functions["helper"].start]
        callers = [
            block.index for block in cfg.blocks
            if helper_entry_block in block.successors and block.function == "main"
        ]
        assert callers, "JAL block should have an edge to the callee entry"


class TestDataflow:
    def test_liveness_of_loop_counter(self):
        program = loop_program()
        cfg = build_cfg(program)
        live_out = compute_liveness(cfg)
        branch_index = next(
            index for index, instruction in enumerate(program.instructions)
            if instruction.op is Opcode.BLT
        )
        mul_index = next(
            index for index, instruction in enumerate(program.instructions)
            if instruction.op is Opcode.MUL
        )
        # The induction variable is live around the loop body.
        assert R(8) in live_out[mul_index]
        # The payload register dies after the store.
        store_index = next(
            index for index, instruction in enumerate(program.instructions)
            if instruction.op is Opcode.SW
        )
        assert R(11) not in live_out[store_index]
        assert branch_index in live_out

    def test_reaching_definitions_def_use_chain(self):
        program = loop_program()
        cfg = build_cfg(program)
        chains = compute_reaching_definitions(cfg)
        mul_index = next(
            index for index, instruction in enumerate(program.instructions)
            if instruction.op is Opcode.MUL
        )
        store_index = next(
            index for index, instruction in enumerate(program.instructions)
            if instruction.op is Opcode.SW
        )
        assert store_index in chains.get(mul_index, [])


class TestCallGraph:
    def test_callers_and_callees(self):
        source = """
        int leaf(int x) { return x * 2; }
        int middle(int x) { return leaf(x) + 1; }
        int main() { return middle(5); }
        """
        program = compile_source(source)
        graph = build_call_graph(program)
        assert "leaf" in graph.callees["middle"]
        assert "middle" in graph.callees["main"]
        assert graph.reachable_from("main") == {"main", "middle", "leaf"}
        assert "leaf" in graph.leaf_functions()


class TestControlTagging:
    def test_paper_example_tags_data_only_instructions(self):
        """The worked example from Section 3 of the paper.

        I0: $2 = $4 + 1      -> tagged
        I1: LD $3, addr
        I2: $2 = $3 + 2
        I3: $3 = $3 + 8
        I4: $10 = $8 - $4    -> tagged
        I5: $10 = $3 << $2
        I6: $4 = $3 + $6     -> tagged
        I7: $3 = $3 + 1
        I8: BNE $3, $10, label
        """
        source = """
        .data addr 4
        .func main
            addi $2, $4, 1
            la   $20, addr
            lw   $3, $20, 0
            addi $2, $3, 2
            addi $3, $3, 8
            sub  $10, $8, $4
            sll  $10, $3, $2
            add  $4, $3, $6
            addi $3, $3, 1
        target:
            bne  $3, $10, target
            halt
        .endfunc
        """
        program = parse_assembly(source)
        tag_control_data(program)
        mnemonic_tags = [
            (instruction.info.name, instruction.low_reliability)
            for instruction in program.instructions
        ]
        # I0 ($2 = $4 + 1), I4 ($10 = $8 - $4) and I6 ($4 = $3 + $6) are the
        # arithmetic instructions that do not influence the branch.
        assert mnemonic_tags[0] == ("addi", True)    # I0
        assert mnemonic_tags[3] == ("addi", False)   # I2 defines $2 used by I5
        assert mnemonic_tags[4] == ("addi", False)   # I3 feeds the branch
        assert mnemonic_tags[5] == ("sub", True)     # I4
        assert mnemonic_tags[6] == ("sll", False)    # I5 defines $10 (branch)
        assert mnemonic_tags[7] == ("add", True)     # I6
        assert mnemonic_tags[8] == ("addi", False)   # I7 feeds the branch

    def test_loop_counter_is_protected_and_payload_is_tagged(self):
        program = loop_program()
        report = tag_control_data(program)
        mul_index = next(
            index for index, instruction in enumerate(program.instructions)
            if instruction.op is Opcode.MUL
        )
        addi_index = next(
            index for index, instruction in enumerate(program.instructions)
            if instruction.op is Opcode.ADDI and instruction.rd == R(8)
        )
        assert program.instructions[mul_index].low_reliability
        assert not program.instructions[addi_index].low_reliability
        assert report.static_tagged > 0

    def test_protect_addresses_option_protects_address_chain(self):
        program = loop_program()
        report = tag_control_data(program, protect_addresses=True)
        add_index = next(
            index for index, instruction in enumerate(program.instructions)
            if instruction.op is Opcode.ADD and instruction.rd == R(12)
        )
        assert not program.instructions[add_index].low_reliability
        # The default (paper rule) tags the address computation.
        default_report = tag_control_data(program)
        assert program.instructions[add_index].low_reliability
        assert default_report.static_tagged >= report.static_tagged

    def test_eligibility_restricts_tagging(self):
        source = """
        reliable int data_path(int x) { return x * 3 + 1; }
        int main() { return data_path(4); }
        """
        program = compile_source(source)
        report = tag_control_data(program)
        data_path = program.functions["data_path"]
        tagged_inside = [
            index for index in report.tagged_indices
            if data_path.start <= index < data_path.end
        ]
        assert tagged_inside == []

    def test_clear_tags(self):
        program = loop_program()
        tag_control_data(program)
        assert program.tagged_indices()
        clear_tags(program)
        assert program.tagged_indices() == []

    def test_interprocedural_return_value_protection(self):
        # The callee's return value feeds a branch in the caller, so the
        # instruction computing it must stay protected across the call.
        source = """
        int classify(int x) { return x * 7; }
        int main() {
            if (classify(3) > 10) { return 1; }
            return 0;
        }
        """
        program = compile_source(source)
        tag_control_data(program)
        classify = program.functions["classify"]
        mul_instructions = [
            program.instructions[index]
            for index in range(classify.start, classify.end)
            if program.instructions[index].op is Opcode.MUL
        ]
        assert mul_instructions and all(
            not instruction.low_reliability for instruction in mul_instructions
        )

    def test_track_memory_is_more_conservative(self):
        program_a = loop_program()
        program_b = loop_program()
        default_report = tag_control_data(program_a)
        conservative_report = tag_control_data(program_b, track_memory=True,
                                                protect_addresses=True)
        assert conservative_report.static_tagged <= default_report.static_tagged


# ----------------------------------------------------------------------
# Property tests: the worklist fixpoints agree with a brute-force
# per-path oracle on randomized small CFGs.
# ----------------------------------------------------------------------

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.passes import compute_def_use

#: Register pool for generated programs (well away from $0/$sp/$fp).
_REGS = [R(8), R(9), R(10), R(11)]


@st.composite
def _small_programs(draw):
    """A random single-function program: arithmetic + branches, no calls.

    Branches may jump forward or backward to any emitted label, so the
    generated CFGs include loops, unreachable tails and diamonds — the
    shapes that shake out iteration-order bugs in worklist solvers.
    """
    length = draw(st.integers(min_value=3, max_value=12))
    label_slots = draw(st.lists(st.integers(min_value=0, max_value=length - 1),
                                max_size=3, unique=True))
    slots = []
    for _ in range(length):
        kinds = ["add", "addi", "mul", "li"]
        if label_slots:
            kinds.append("branch")
        kind = draw(st.sampled_from(kinds))
        if kind == "branch":
            slots.append((kind, draw(st.sampled_from(_REGS)),
                          draw(st.sampled_from(_REGS)),
                          draw(st.sampled_from(sorted(label_slots)))))
        else:
            slots.append((kind, draw(st.sampled_from(_REGS)),
                          draw(st.sampled_from(_REGS)),
                          draw(st.sampled_from(_REGS))))

    builder = ProgramBuilder()
    with builder.function("main"):
        for slot, (kind, a, b, c) in enumerate(slots):
            if slot in label_slots:
                builder.label(f"L{slot}")
            if kind == "add":
                builder.add(a, b, c)
            elif kind == "mul":
                builder.mul(a, b, c)
            elif kind == "addi":
                builder.addi(a, b, 1)
            elif kind == "li":
                builder.li(a, 7)
            else:
                builder.bne(a, b, f"L{c}")
        builder.halt()
    return builder.build()


def _successors(program):
    """Instruction-level successor lists, straight from the ISA semantics
    (independent of the CFG builder under test)."""
    successors = []
    for index, instruction in enumerate(program.instructions):
        if instruction.op is Opcode.HALT:
            successors.append([])
        elif instruction.info.is_branch:
            successors.append(sorted({program.labels[instruction.label],
                                      index + 1}))
        elif instruction.op is Opcode.J:
            successors.append([program.labels[instruction.label]])
        else:
            successors.append([index + 1])
    return successors


def _brute_live_out(program, successors, index, register):
    """May-liveness by explicit DFS over simple paths.

    ``register`` is live-out of ``index`` iff some path from a successor
    reaches a use of it before any redefinition.  A shortest witness
    path never repeats a node, so restricting the search to simple paths
    is exact.
    """
    def reaches_use(node, path):
        instruction = program.instructions[node]
        if register in instruction.uses():
            return True
        if register in instruction.defs():
            return False
        return any(reaches_use(successor, path | {successor})
                   for successor in successors[node] if successor not in path)

    return any(reaches_use(successor, {successor})
               for successor in successors[index])


def _brute_chain(program, successors, def_index, register):
    """Reached uses of one definition by explicit DFS over simple paths."""
    reached = set()

    def walk(node, path):
        instruction = program.instructions[node]
        if register in instruction.uses():
            reached.add(node)
        if register in instruction.defs():
            return
        for successor in successors[node]:
            if successor not in path:
                walk(successor, path | {successor})

    for successor in successors[def_index]:
        walk(successor, {successor})
    return reached


@settings(max_examples=40, deadline=None, derandomize=True)
@given(_small_programs())
def test_liveness_fixpoint_matches_per_path_oracle(program):
    cfg = build_cfg(program)
    live_out = compute_liveness(cfg)
    successors = _successors(program)
    for index in range(len(program.instructions)):
        for register in _REGS:
            expected = _brute_live_out(program, successors, index, register)
            actual = register in live_out.get(index, set())
            assert actual == expected, (
                f"live-out of {register} at {index}: "
                f"solver={actual} oracle={expected}\n{program.listing()}")


@settings(max_examples=40, deadline=None, derandomize=True)
@given(_small_programs())
def test_reaching_definitions_chains_match_per_path_oracle(program):
    cfg = build_cfg(program)
    chains = compute_reaching_definitions(cfg)
    successors = _successors(program)
    for index, instruction in enumerate(program.instructions):
        defs = instruction.defs()
        if not defs:
            continue
        expected = _brute_chain(program, successors, index, defs[0])
        actual = set(chains.get(index, ()))
        assert actual == expected, (
            f"def-use chain of {index} ({defs[0]}): "
            f"solver={sorted(actual)} oracle={sorted(expected)}\n"
            f"{program.listing()}")


@settings(max_examples=40, deadline=None, derandomize=True)
@given(_small_programs())
def test_def_use_facts_reproduce_tagging_on_random_programs(program):
    """The tentpole equivalence on random CFGs, not just the 7 apps."""
    defuse = compute_def_use(program)
    report = tag_control_data(program)
    assert defuse.tagged_sites() == frozenset(report.tagged_indices)
