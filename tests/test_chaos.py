"""Chaos tests: the campaign fabric vs. deterministic network failures.

The acceptance contract of the robustness layer (ISSUE 7): a distributed
sweep driven through a fault-injecting proxy — worker kills, stalls,
truncated frames, corrupted payloads, total fleet loss — produces a
shard store **byte-identical** to an uninterrupted serial sweep.  The
:class:`chaos_proxy.ChaosProxy` schedules are deterministic (fire on the
Nth frame of a kind, not on timers), so these tests are reproducible.

The grid is one small susan cell (4 protected runs at 3 errors), matching
the CI ``chaos-smoke`` job's budget.
"""

import contextlib
import os
import re
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from chaos_proxy import ChaosProxy
from repro.core import CampaignConfig, ShardStore
from repro.exec import FleetLostError, SocketExecutor
from repro.experiments import ExperimentConfig
from repro.experiments.sweep import SweepOrchestrator
from repro.sim import ProtectionMode

SRC_DIR = Path(__file__).resolve().parents[1] / "src"

#: One small susan cell: quick enough for CI, big enough that every
#: schedule's events actually fire (4 runs = 4 run frames + 4 records
#: frames per clean pass).
CONFIG = ExperimentConfig(suite_name="small", runs_per_cell=4, base_seed=23)
GRID = {"apps": ["susan"], "modes": (ProtectionMode.PROTECTED,),
        "errors_axis": [3], "include_table2": False}


def store_bytes(store: ShardStore):
    """Relative path -> bytes, excluding the ``fleet.json`` telemetry
    sidecar (how the sweep ran is exactly what chaos perturbs; *what* it
    produced must not move)."""
    return {
        str(path.relative_to(store.root)): path.read_bytes()
        for path in sorted(store.root.rglob("*"))
        if path.is_file() and path.name != "fleet.json"
    }


@contextlib.contextmanager
def spawn_worker():
    """One real TCP campaign worker subprocess; yields its address."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.exec.worker", "--port", "0"],
        stdout=subprocess.PIPE, text=True, env=env,
    )
    try:
        banner = process.stdout.readline().strip()
        yield re.search(r"listening on (\S+:\d+)$", banner).group(1)
    finally:
        process.terminate()
        process.wait(timeout=10)


@pytest.fixture(autouse=True)
def fast_liveness(monkeypatch):
    """Shrink the liveness constants so failure detection takes tenths of
    seconds instead of the production tens."""
    monkeypatch.setattr(SocketExecutor, "HEARTBEAT_INTERVAL", 0.3)
    monkeypatch.setattr(SocketExecutor, "RECONNECT_BASE", 0.05)
    monkeypatch.setattr(SocketExecutor, "RECONNECT_CAP", 0.2)
    monkeypatch.setattr(SocketExecutor, "RECONNECT_ATTEMPTS", 3)


@pytest.fixture(scope="module")
def reference_store(tmp_path_factory):
    """The uninterrupted serial sweep every chaos store must match."""
    root = tmp_path_factory.mktemp("chaos-reference")
    SweepOrchestrator(ShardStore(root), CONFIG, chunk_size=2, **GRID).run()
    return ShardStore(root)


def run_chaos_sweep(root, addresses, fallback=True):
    campaign = CampaignConfig(
        runs=CONFIG.runs_per_cell, base_seed=CONFIG.base_seed,
        executor="socket", workers=tuple(addresses), fallback=fallback,
    )
    orchestrator = SweepOrchestrator(ShardStore(root), CONFIG,
                                     campaign=campaign, chunk_size=2, **GRID)
    return orchestrator.run()


#: Each schedule injects a different failure mode on the wire.  ``skip``
#: values stagger the events into the middle of the cell so some chunks
#: complete cleanly before the fault and some after the recovery.
SCHEDULES = {
    "kill": [
        {"action": "kill", "on": "records", "direction": "s2c", "skip": 1},
    ],
    "stall": [
        {"action": "stall", "on": "records", "direction": "s2c"},
    ],
    "truncate": [
        {"action": "truncate", "on": "records", "direction": "s2c",
         "skip": 1},
    ],
    "corrupt": [
        {"action": "corrupt", "on": "records", "direction": "s2c"},
    ],
    "corrupt-toward-worker": [
        {"action": "corrupt", "on": "run", "direction": "c2s", "skip": 1},
    ],
    "kill-then-corrupt": [
        {"action": "kill", "on": "records", "direction": "s2c"},
        {"action": "corrupt", "on": "records", "direction": "s2c"},
    ],
}


class TestChaosSchedules:
    @pytest.mark.parametrize("name", sorted(SCHEDULES))
    def test_schedule_yields_byte_identical_store(self, tmp_path,
                                                  reference_store, name):
        schedule = SCHEDULES[name]
        root = tmp_path / "store"
        with spawn_worker() as address, \
                ChaosProxy(address, schedule) as proxy:
            report = run_chaos_sweep(root, [proxy.address])
            assert proxy.events_fired == len(schedule), \
                f"schedule {name!r} never fully fired"
        assert store_bytes(ShardStore(root)) == store_bytes(reference_store)
        # The injected fault must actually have been *survived*, not
        # missed: the executor retried at least one chunk lease.
        retries = sum(counters.get("retries", 0) for counters
                      in report.fleet.get("workers", {}).values())
        assert retries >= 1


class TestFleetLoss:
    #: Blackhole after the 3rd records frame: the first orchestrator
    #: chunk (2 runs) lands remotely and persists, then the fleet dies
    #: mid-cell with one chunk in flight.
    SCHEDULE = [{"action": "blackhole", "on": "records", "direction": "s2c",
                 "skip": 2}]

    def test_total_loss_degrades_to_local_with_one_warning(
            self, tmp_path, reference_store):
        root = tmp_path / "store"
        with spawn_worker() as address, \
                ChaosProxy(address, self.SCHEDULE) as proxy:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                report = run_chaos_sweep(root, [proxy.address])
        fleet_warnings = [w for w in caught
                          if "falling back to local" in str(w.message)]
        assert len(fleet_warnings) == 1  # loud, but exactly once
        assert report.fleet["fallback_runs"] > 0
        assert store_bytes(ShardStore(root)) == store_bytes(reference_store)
        # Satellite: the counters are persisted for `status` to surface.
        persisted = ShardStore(root).read_fleet_stats()
        assert persisted["fallback_runs"] == report.fleet["fallback_runs"]

    def test_total_loss_without_fallback_aborts_then_resumes(
            self, tmp_path, reference_store):
        """--no-fallback: the sweep aborts with FleetLostError instead of
        degrading, and a later (serial) invocation resumes the partial
        store to byte-identity — mid-cell executor collapse loses no
        persisted work and corrupts nothing."""
        root = tmp_path / "store"
        with spawn_worker() as address, \
                ChaosProxy(address, self.SCHEDULE) as proxy:
            with pytest.raises(FleetLostError, match="fallback disabled"):
                run_chaos_sweep(root, [proxy.address], fallback=False)
        partial = store_bytes(ShardStore(root))
        reference = store_bytes(reference_store)
        assert partial != reference
        # The chunks that completed before the collapse are intact...
        assert all(reference[path].startswith(partial[path])
                   for path in partial if path.endswith(".jsonl"))
        # ...and a serial resume fills in exactly the missing runs.
        report = SweepOrchestrator(ShardStore(root), CONFIG, chunk_size=2,
                                   **GRID).run()
        assert 0 < report.runs_executed < 4
        assert store_bytes(ShardStore(root)) == reference
