"""Tests of the campaign runner, outcome aggregation and the experiment harness."""

from dataclasses import replace

import pytest

from repro.apps import create_app
from repro.core import (
    CampaignConfig,
    CampaignResult,
    CampaignRunner,
    FidelityResult,
    RunRecord,
    format_table,
    run_quick_campaign,
)
from repro.core.report import FigureData, TableData
from repro.experiments import (
    ExperimentConfig,
    figure3_mcf,
    table1_applications,
    table3_low_reliability_instructions,
)
from repro.sim import Outcome, ProtectionMode


@pytest.fixture(scope="module")
def adpcm():
    return create_app("adpcm", samples=300)


class TestAggregation:
    def _record(self, outcome, score=None, acceptable=False):
        fidelity = None
        if score is not None:
            fidelity = FidelityResult(score=score, acceptable=acceptable)
        return RunRecord(run_index=0, seed=0, mode=ProtectionMode.PROTECTED,
                         errors_requested=1, errors_injected=1, outcome=outcome,
                         executed=100, fidelity=fidelity)

    def test_failure_percentages(self):
        result = CampaignResult(app_name="x", mode=ProtectionMode.PROTECTED,
                                errors_requested=1)
        result.records = [
            self._record(Outcome.COMPLETED, score=90.0, acceptable=True),
            self._record(Outcome.CRASH),
            self._record(Outcome.HANG),
            self._record(Outcome.COMPLETED, score=50.0, acceptable=False),
        ]
        assert result.failure_percent == 50.0
        assert result.crash_percent == 25.0
        assert result.hang_percent == 25.0
        assert result.acceptable_percent == 25.0
        assert result.mean_fidelity == 70.0
        assert result.summary()["failures_pct"] == 50.0

    def test_empty_campaign_is_all_zero(self):
        result = CampaignResult(app_name="x", mode=ProtectionMode.PROTECTED,
                                errors_requested=0)
        assert result.failure_percent == 0.0
        assert result.mean_fidelity is None


class TestCampaignRunner:
    def test_zero_error_campaign_is_perfect(self, adpcm):
        campaign = run_quick_campaign(adpcm, errors=0, runs=3)
        assert campaign.failure_percent == 0.0
        assert campaign.perfect_percent == 100.0

    def test_campaign_is_deterministic_for_a_seed(self, adpcm):
        first = run_quick_campaign(adpcm, errors=5, runs=3, base_seed=42)
        second = run_quick_campaign(adpcm, errors=5, runs=3, base_seed=42)
        assert [record.outcome for record in first.records] == \
            [record.outcome for record in second.records]
        assert first.fidelity_scores() == second.fidelity_scores()

    def test_errors_are_actually_injected(self, adpcm):
        campaign = run_quick_campaign(adpcm, errors=6, runs=3)
        assert all(record.errors_injected > 0 for record in campaign.records)

    def test_unprotected_mode_exposes_more_instructions(self, adpcm):
        golden = adpcm.golden(0)
        assert golden.exposed_unprotected > golden.exposed_protected

    def test_protection_preserves_fidelity_better(self, adpcm):
        """The paper's central claim at campaign scale: with control data
        protected, runs complete and keep fidelity; without protection the
        same error count produces catastrophic failures and/or worse output."""
        runner = CampaignRunner(adpcm, CampaignConfig(runs=6, base_seed=7))
        errors = 30
        protected = runner.run_campaign(errors, ProtectionMode.PROTECTED)
        unprotected = runner.run_campaign(errors, ProtectionMode.UNPROTECTED)
        assert protected.failure_percent <= unprotected.failure_percent
        protected_quality = protected.acceptable_percent + protected.completed_percent
        unprotected_quality = unprotected.acceptable_percent + unprotected.completed_percent
        assert protected_quality >= unprotected_quality

    def test_sweep_covers_requested_axis(self, adpcm):
        runner = CampaignRunner(adpcm, CampaignConfig(runs=2))
        sweep = runner.run_sweep([0, 2, 4], mode=ProtectionMode.PROTECTED)
        assert sweep.errors_axis() == [0, 2, 4]
        assert len(sweep.failure_series()) == 3
        assert sweep.cell(2).errors_requested == 2

    def test_crash_runs_score_as_none(self, adpcm):
        """Catastrophic runs carry no fidelity: scoring must not attempt to
        read output buffers from a crashed or hung machine image."""
        golden = adpcm.golden(0)
        crashed = replace(golden.result, outcome=Outcome.CRASH, exit_value=None,
                          fault="numeric fault: synthetic", fault_kind="fault")
        hung = replace(golden.result, outcome=Outcome.HANG, exit_value=None)
        assert adpcm.score_run(crashed, seed=0) is None
        assert adpcm.score_run(hung, seed=0) is None
        completed = adpcm.score_run(golden.result, seed=0)
        assert completed is not None and completed.perfect

    def test_golden_runs_are_memoized_per_workload_seed(self, adpcm):
        runner = CampaignRunner(adpcm, CampaignConfig(runs=5, base_seed=3))
        runner.run_campaign(2, ProtectionMode.PROTECTED)
        # One workload seed -> exactly one memoized golden run, shared with
        # (not re-simulated from) the application's own cache.
        assert runner.golden_for(0) is adpcm.golden(0)
        assert adpcm.golden(0) is adpcm.golden(0)


class TestParallelCampaign:
    """CampaignConfig(parallel=N) must be bit-identical to the serial runner."""

    def test_parallel_records_match_serial(self, adpcm):
        serial = CampaignRunner(
            adpcm, CampaignConfig(runs=6, base_seed=11)
        ).run_campaign(4, ProtectionMode.PROTECTED)
        parallel = CampaignRunner(
            adpcm, CampaignConfig(runs=6, base_seed=11, parallel=2,
                                  parallel_threshold=1)
        ).run_campaign(4, ProtectionMode.PROTECTED)
        assert parallel.records == serial.records

    def test_parallel_unprotected_matches_serial(self, adpcm):
        serial = CampaignRunner(
            adpcm, CampaignConfig(runs=4, base_seed=29)
        ).run_campaign(8, ProtectionMode.UNPROTECTED)
        parallel = CampaignRunner(
            adpcm, CampaignConfig(runs=4, base_seed=29, parallel=4,
                                  parallel_threshold=1)
        ).run_campaign(8, ProtectionMode.UNPROTECTED)
        assert parallel.records == serial.records
        assert parallel.failure_percent == serial.failure_percent
        assert parallel.fidelity_scores() == serial.fidelity_scores()

    def test_quick_campaign_parallel_flag(self, adpcm):
        serial = run_quick_campaign(adpcm, errors=3, runs=4, base_seed=5)
        parallel = run_quick_campaign(adpcm, errors=3, runs=4, base_seed=5,
                                      parallel=2, parallel_threshold=1)
        assert parallel.records == serial.records

    def test_small_cells_fall_back_to_serial(self, adpcm):
        """Below parallel_threshold runs the pool is not worth spawning."""
        runner = CampaignRunner(adpcm, CampaignConfig(runs=12, parallel=4))
        assert runner.executor_name() == "serial"
        runner = CampaignRunner(
            adpcm, CampaignConfig(runs=24, parallel=4)
        )
        assert runner.executor_name() == "pool"
        runner = CampaignRunner(
            adpcm, CampaignConfig(runs=12, parallel=4, parallel_threshold=8)
        )
        assert runner.executor_name() == "pool"

    def test_parallel_fork_engine_matches_serial_decoded(self, adpcm):
        """Workers rebuild checkpoint stores locally; records stay identical."""
        serial = CampaignRunner(
            adpcm, CampaignConfig(runs=4, base_seed=13, engine="decoded")
        ).run_campaign(4, ProtectionMode.PROTECTED)
        parallel = CampaignRunner(
            adpcm, CampaignConfig(runs=4, base_seed=13, parallel=2,
                                  parallel_threshold=1, engine="fork")
        ).run_campaign(4, ProtectionMode.PROTECTED)
        assert parallel.records == serial.records


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "b"], [[1, 2.5], [30, None]])
        assert "a" in text and "30" in text and "-" in text

    def test_table_data_row_lookup(self):
        table = TableData(title="t", headers=["name", "value"])
        table.add_row(["x", 1])
        assert table.row_by_key("x") == ["x", 1]
        assert table.column("value") == [1]

    def test_figure_data_rendering(self):
        figure = FigureData(title="fig", x_label="errors", x_values=[0, 1])
        figure.add_series("y", [1.0, 2.0])
        text = figure.to_table()
        assert "fig" in text and "errors" in text and "2.00" in text


class TestExperimentHarness:
    def test_table1_lists_all_applications(self):
        table = table1_applications(ExperimentConfig(suite_name="small", runs_per_cell=1))
        assert len(table.rows) == 7
        assert "susan" in table.column("Application")

    def test_table3_reports_fractions(self):
        config = ExperimentConfig(suite_name="small", runs_per_cell=1)
        table = table3_low_reliability_instructions(config, apps=["adpcm", "mcf"])
        fractions = table.column("% low reliability (dynamic)")
        assert all(0.0 < value < 100.0 for value in fractions)
        adpcm_row = table.row_by_key("adpcm")
        mcf_row = table.row_by_key("mcf")
        # The paper's qualitative ordering: ADPCM is far more taggable than MCF.
        assert adpcm_row[2] > mcf_row[2]

    def test_figure3_produces_series(self):
        config = ExperimentConfig(suite_name="small", runs_per_cell=2)
        figure = figure3_mcf(config, errors_axis=[0, 2])
        assert figure.x_values == [0.0, 2.0]
        optimal = figure.series_by_label("% optimal schedules found").values
        assert optimal[0] == 100.0
