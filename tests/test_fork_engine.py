"""Differential tests: checkpoint-and-fork engine vs the full decoded engine.

The fork engine (:mod:`repro.sim.fork`) restores a mid-run golden
checkpoint, replays only the gap to the first injection, and splices the
golden suffix back in when the run re-converges.  Every one of those
shortcuts must be invisible in the results: a forked run's
:class:`RunResult` — outcome, dynamic counts, outputs, memory image,
statistics, injection events, fault messages — must be **bit-identical** to
executing the same plan from scratch on the decoded engine, across all
seven applications, both protection modes, and error counts spanning
masked, degraded, crashed and hung outcomes.
"""

import zlib

import pytest

from repro.apps import small_suite
from repro.core import CampaignConfig, CampaignRunner
from repro.sim import Machine, ProtectionMode, plan_injections

APP_NAMES = ["susan", "mpeg", "mcf", "blowfish", "gsm", "art", "adpcm"]
MODES = [ProtectionMode.PROTECTED, ProtectionMode.UNPROTECTED]


@pytest.fixture(scope="module")
def suite():
    return small_suite()


def _assert_identical(full, forked):
    assert forked.outcome == full.outcome
    assert forked.executed == full.executed
    assert forked.exit_value == full.exit_value
    assert forked.fault == full.fault
    assert forked.fault_kind == full.fault_kind
    assert forked.outputs == full.outputs
    assert forked.exec_counts == full.exec_counts
    assert forked.statistics == full.statistics
    assert forked.memory.cells == full.memory.cells
    assert forked.injection.injected_errors == full.injection.injected_errors
    assert forked.injection.events == full.injection.events


def _run_both(app, errors, mode, seed):
    golden = app.golden(0)
    exposed = golden.exposed_count(mode)
    full_plan = plan_injections(errors, exposed, mode, seed=seed)
    fork_plan = plan_injections(errors, exposed, mode, seed=seed)
    assert full_plan.targets == fork_plan.targets
    full = app.run_once(injection=full_plan, seed=0, engine="decoded")
    forked = app.run_once(injection=fork_plan, seed=0, engine="fork")
    return full, forked


@pytest.mark.parametrize("name", APP_NAMES)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("errors", [1, 4, 16])
def test_forked_run_is_bit_identical(suite, name, mode, errors):
    app = suite[name]
    seed = 1000 + zlib.crc32(f"{name}/{mode.value}/{errors}".encode()) % 10000
    full, forked = _run_both(app, errors, mode, seed)
    _assert_identical(full, forked)
    assert forked.injection.requested_errors == min(
        errors, app.golden(0).exposed_count(mode))


def test_catastrophic_paths_are_identical(suite):
    """Heavy unprotected injection exercises crash and hang paths.

    Forty unprotected flips over several plan seeds produce a mix of
    completed, crashed and hung runs across the applications; the fork
    engine must reproduce each one exactly, including the fault message,
    the partial memory image, and the watchdog's dynamic stopping point.
    """
    outcomes = set()
    for name in ("mcf", "blowfish", "gsm"):
        app = suite[name]
        for seed in (1, 2, 3, 4, 5):
            full, forked = _run_both(app, 40, ProtectionMode.UNPROTECTED, seed)
            _assert_identical(full, forked)
            outcomes.add(full.outcome)
    assert len(outcomes) > 1, "plans produced only one outcome kind"


def test_splice_fires_for_masked_faults(suite):
    """Fully-masked faults must terminate through the golden-suffix splice."""
    app = suite["susan"]
    golden = app.golden(0)
    store = app.checkpoint_store(0)
    before = store.spliced_runs
    spliced_result = None
    for i in range(30):
        seed = 99 + 7919 * i
        plan = plan_injections(1, golden.exposed_count(ProtectionMode.PROTECTED),
                               ProtectionMode.PROTECTED, seed=seed)
        result = app.run_once(injection=plan, seed=0, engine="fork")
        if store.spliced_runs > before:
            spliced_result = result
            break
    assert spliced_result is not None, "no run re-converged in 30 attempts"
    # A spliced, fully-masked run reproduces the golden artefacts exactly
    # even though it only simulated a fraction of the program.
    g = golden.result
    assert spliced_result.outputs == g.outputs
    assert spliced_result.executed == g.executed
    assert spliced_result.exit_value == g.exit_value
    assert spliced_result.memory.cells == g.memory.cells


def test_fork_respects_tiny_instruction_budgets(suite):
    """A budget below the restore point must hang exactly like a full run."""
    app = suite["mcf"]
    golden = app.golden(0)
    mode = ProtectionMode.PROTECTED
    budget = golden.executed // 2
    full_plan = plan_injections(4, golden.exposed_count(mode), mode, seed=77)
    fork_plan = plan_injections(4, golden.exposed_count(mode), mode, seed=77)
    full = app.run_once(injection=full_plan, seed=0, max_instructions=budget,
                        engine="decoded")
    forked = app.run_once(injection=fork_plan, seed=0, max_instructions=budget,
                          engine="fork")
    _assert_identical(full, forked)
    assert full.outcome == "hang"
    assert full.executed == budget


def test_reused_plan_still_fires_every_injection(suite):
    """A plan object reused across runs carries the previous run's events;
    the fork engine must not mistake those for this run's flips (which
    would swap to fast handlers and splice before anything fired)."""
    app = suite["adpcm"]
    golden = app.golden(0)
    mode = ProtectionMode.UNPROTECTED
    reused = plan_injections(8, golden.exposed_count(mode), mode, seed=4711)
    first = app.run_once(injection=reused, seed=0, engine="fork")
    events_after_first = len(reused.events)
    assert events_after_first > 0
    # Second run with the same (now event-laden) plan object: the decoded
    # engine re-fires every reached target, and the fork engine must match
    # its execution state exactly (events accumulate in both).
    forked = app.run_once(injection=reused, seed=0, engine="fork")
    assert len(reused.events) > events_after_first
    fresh = plan_injections(8, golden.exposed_count(mode), mode, seed=4711)
    app.run_once(injection=fresh, seed=0, engine="decoded")   # first use
    decoded = app.run_once(injection=fresh, seed=0, engine="decoded")  # reuse
    assert forked.outcome == decoded.outcome
    assert forked.executed == decoded.executed
    assert forked.outputs == decoded.outputs
    assert forked.exec_counts == decoded.exec_counts
    assert forked.memory.cells == decoded.memory.cells


def test_fork_engine_requires_checkpoint_store(suite):
    app = suite["mcf"]
    plan = plan_injections(1, app.golden(0).exposed_count(ProtectionMode.PROTECTED),
                           ProtectionMode.PROTECTED, seed=3)
    machine = Machine(app.program())
    with pytest.raises(ValueError, match="checkpoint store"):
        machine.run(injection=plan, engine="fork")


def test_fork_engine_with_empty_plan_degrades_to_decoded(suite):
    """Nothing to inject means nothing to fork from: run the golden path."""
    app = suite["mcf"]
    plan = plan_injections(0, 1, ProtectionMode.NONE, seed=5)
    result = app.run_once(injection=plan, seed=0, engine="fork")
    golden = app.golden(0).result
    assert result.outputs == golden.outputs
    assert result.exec_counts == golden.exec_counts


def test_fork_campaigns_match_decoded_campaigns(suite):
    """Campaign records are independent of the configured engine."""
    app = suite["adpcm"]
    decoded = CampaignRunner(
        app, CampaignConfig(runs=8, base_seed=21, engine="decoded")
    ).run_campaign(4, ProtectionMode.PROTECTED)
    forked = CampaignRunner(
        app, CampaignConfig(runs=8, base_seed=21, engine="fork")
    ).run_campaign(4, ProtectionMode.PROTECTED)
    assert forked.records == decoded.records


def test_checkpoint_store_is_not_pickled(suite):
    """Worker payloads must not carry the snapshots (workers rebuild them)."""
    import pickle

    app = suite["mcf"]
    store = app.checkpoint_store(0)
    assert app.golden(0).checkpoint_store is store
    revived = pickle.loads(pickle.dumps(app.golden(0)))
    assert revived.checkpoint_store is None
    # The program round-trips without its decode cache either.
    program = app.program()
    assert getattr(program, "_decoded_cache", None) is not None
    revived_program = pickle.loads(pickle.dumps(program))
    assert getattr(revived_program, "_decoded_cache", None) is None
