"""Differential tests: checkpoint-and-fork engine vs the full decoded engine.

The fork engine (:mod:`repro.sim.fork`) restores a mid-run golden
checkpoint, replays only the gap to the first injection, and splices the
golden suffix back in when the run re-converges.  Every one of those
shortcuts must be invisible in the results: a forked run's
:class:`RunResult` — outcome, dynamic counts, outputs, memory image,
statistics, injection events, fault messages — must be **bit-identical** to
executing the same plan from scratch on the decoded engine, across all
seven applications, both protection modes, and error counts spanning
masked, degraded, crashed and hung outcomes.

The numpy lockstep batch engine (:mod:`repro.sim.batch`) carries whole
cells of plans along the golden trace at once and owes the decoded engine
the exact same bit-identity, lane by lane — the second half of this module
holds it to that across apps, modes, error counts and fault models,
including the crash/hang/budget-overrun paths and a mid-cell
interrupt/resume through the shard store.
"""

import zlib

import pytest

from repro.apps import small_suite
from repro.core import CampaignConfig, CampaignRunner
from repro.sim import Machine, ProtectionMode, get_model, plan_injections

from test_engine_differential import nan_equal

APP_NAMES = ["susan", "mpeg", "mcf", "blowfish", "gsm", "art", "adpcm"]
MODES = [ProtectionMode.PROTECTED, ProtectionMode.UNPROTECTED]
#: Fault models the batch engine can carry (fork-compatible plans); the
#: state-kind ``memory-bit`` model falls back to decoded and is covered in
#: ``tests/test_executors.py``.
BATCH_MODELS = ["control-bit", "data-bit", "multi-bit", "opcode"]


@pytest.fixture(scope="module")
def suite():
    return small_suite()


def _assert_identical(full, forked):
    assert forked.outcome == full.outcome
    assert forked.executed == full.executed
    assert forked.exit_value == full.exit_value
    assert forked.fault == full.fault
    assert forked.fault_kind == full.fault_kind
    assert forked.outputs == full.outputs
    assert forked.exec_counts == full.exec_counts
    assert forked.statistics == full.statistics
    assert forked.memory.cells == full.memory.cells
    assert forked.injection.injected_errors == full.injection.injected_errors
    assert forked.injection.events == full.injection.events


def _run_both(app, errors, mode, seed):
    golden = app.golden(0)
    exposed = golden.exposed_count(mode)
    full_plan = plan_injections(errors, exposed, mode, seed=seed)
    fork_plan = plan_injections(errors, exposed, mode, seed=seed)
    assert full_plan.targets == fork_plan.targets
    full = app.run_once(injection=full_plan, seed=0, engine="decoded")
    forked = app.run_once(injection=fork_plan, seed=0, engine="fork")
    return full, forked


@pytest.mark.parametrize("name", APP_NAMES)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("errors", [1, 4, 16])
def test_forked_run_is_bit_identical(suite, name, mode, errors):
    app = suite[name]
    seed = 1000 + zlib.crc32(f"{name}/{mode.value}/{errors}".encode()) % 10000
    full, forked = _run_both(app, errors, mode, seed)
    _assert_identical(full, forked)
    assert forked.injection.requested_errors == min(
        errors, app.golden(0).exposed_count(mode))


def test_catastrophic_paths_are_identical(suite):
    """Heavy unprotected injection exercises crash and hang paths.

    Forty unprotected flips over several plan seeds produce a mix of
    completed, crashed and hung runs across the applications; the fork
    engine must reproduce each one exactly, including the fault message,
    the partial memory image, and the watchdog's dynamic stopping point.
    """
    outcomes = set()
    for name in ("mcf", "blowfish", "gsm"):
        app = suite[name]
        for seed in (1, 2, 3, 4, 5):
            full, forked = _run_both(app, 40, ProtectionMode.UNPROTECTED, seed)
            _assert_identical(full, forked)
            outcomes.add(full.outcome)
    assert len(outcomes) > 1, "plans produced only one outcome kind"


def test_splice_fires_for_masked_faults(suite):
    """Fully-masked faults must terminate through the golden-suffix splice."""
    app = suite["susan"]
    golden = app.golden(0)
    store = app.checkpoint_store(0)
    before = store.spliced_runs
    spliced_result = None
    for i in range(30):
        seed = 99 + 7919 * i
        plan = plan_injections(1, golden.exposed_count(ProtectionMode.PROTECTED),
                               ProtectionMode.PROTECTED, seed=seed)
        result = app.run_once(injection=plan, seed=0, engine="fork")
        if store.spliced_runs > before:
            spliced_result = result
            break
    assert spliced_result is not None, "no run re-converged in 30 attempts"
    # A spliced, fully-masked run reproduces the golden artefacts exactly
    # even though it only simulated a fraction of the program.
    g = golden.result
    assert spliced_result.outputs == g.outputs
    assert spliced_result.executed == g.executed
    assert spliced_result.exit_value == g.exit_value
    assert spliced_result.memory.cells == g.memory.cells


def test_fork_respects_tiny_instruction_budgets(suite):
    """A budget below the restore point must hang exactly like a full run."""
    app = suite["mcf"]
    golden = app.golden(0)
    mode = ProtectionMode.PROTECTED
    budget = golden.executed // 2
    full_plan = plan_injections(4, golden.exposed_count(mode), mode, seed=77)
    fork_plan = plan_injections(4, golden.exposed_count(mode), mode, seed=77)
    full = app.run_once(injection=full_plan, seed=0, max_instructions=budget,
                        engine="decoded")
    forked = app.run_once(injection=fork_plan, seed=0, max_instructions=budget,
                          engine="fork")
    _assert_identical(full, forked)
    assert full.outcome == "hang"
    assert full.executed == budget


def test_reused_plan_still_fires_every_injection(suite):
    """A plan object reused across runs carries the previous run's events;
    the fork engine must not mistake those for this run's flips (which
    would swap to fast handlers and splice before anything fired)."""
    app = suite["adpcm"]
    golden = app.golden(0)
    mode = ProtectionMode.UNPROTECTED
    reused = plan_injections(8, golden.exposed_count(mode), mode, seed=4711)
    first = app.run_once(injection=reused, seed=0, engine="fork")
    events_after_first = len(reused.events)
    assert events_after_first > 0
    # Second run with the same (now event-laden) plan object: the decoded
    # engine re-fires every reached target, and the fork engine must match
    # its execution state exactly (events accumulate in both).
    forked = app.run_once(injection=reused, seed=0, engine="fork")
    assert len(reused.events) > events_after_first
    fresh = plan_injections(8, golden.exposed_count(mode), mode, seed=4711)
    app.run_once(injection=fresh, seed=0, engine="decoded")   # first use
    decoded = app.run_once(injection=fresh, seed=0, engine="decoded")  # reuse
    assert forked.outcome == decoded.outcome
    assert forked.executed == decoded.executed
    assert forked.outputs == decoded.outputs
    assert forked.exec_counts == decoded.exec_counts
    assert forked.memory.cells == decoded.memory.cells


def test_fork_engine_requires_checkpoint_store(suite):
    app = suite["mcf"]
    plan = plan_injections(1, app.golden(0).exposed_count(ProtectionMode.PROTECTED),
                           ProtectionMode.PROTECTED, seed=3)
    machine = Machine(app.program())
    with pytest.raises(ValueError, match="checkpoint store"):
        machine.run(injection=plan, engine="fork")


def test_fork_engine_with_empty_plan_degrades_to_decoded(suite):
    """Nothing to inject means nothing to fork from: run the golden path."""
    app = suite["mcf"]
    plan = plan_injections(0, 1, ProtectionMode.NONE, seed=5)
    result = app.run_once(injection=plan, seed=0, engine="fork")
    golden = app.golden(0).result
    assert result.outputs == golden.outputs
    assert result.exec_counts == golden.exec_counts


def test_fork_campaigns_match_decoded_campaigns(suite):
    """Campaign records are independent of the configured engine."""
    app = suite["adpcm"]
    decoded = CampaignRunner(
        app, CampaignConfig(runs=8, base_seed=21, engine="decoded")
    ).run_campaign(4, ProtectionMode.PROTECTED)
    forked = CampaignRunner(
        app, CampaignConfig(runs=8, base_seed=21, engine="fork")
    ).run_campaign(4, ProtectionMode.PROTECTED)
    assert forked.records == decoded.records


# ----------------------------------------------------------------------
# Batch (lockstep) engine vs the decoded engine.
# ----------------------------------------------------------------------

def _assert_lane_identical(full, batched):
    """Byte-identity of one batch lane against its from-scratch decoded run.

    Outputs and memory go through ``nan_equal``: injected float runs can
    legitimately hold NaN, and container ``==`` would compare two distinct
    NaN objects unequal on identity alone.
    """
    assert batched.outcome == full.outcome
    assert batched.executed == full.executed
    assert batched.exit_value == full.exit_value
    assert batched.fault == full.fault
    assert batched.fault_kind == full.fault_kind
    assert nan_equal(batched.outputs, full.outputs)
    assert batched.exec_counts == full.exec_counts
    assert batched.statistics == full.statistics
    assert nan_equal(batched.memory.cells, full.memory.cells)
    assert batched.injection.injected_errors == full.injection.injected_errors
    assert batched.injection.events == full.injection.events


def _cell_plans(app, errors_axis, mode, model_name, seed_base):
    """One plan per error count, derived from the model's own population."""
    golden = app.golden(0)
    model = get_model(model_name)
    population = model.population(golden, mode)
    return [plan_injections(errors, population, mode,
                            seed=seed_base + 31 * errors, model=model_name)
            for errors in errors_axis]


@pytest.mark.parametrize("name", APP_NAMES)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("model_name", BATCH_MODELS)
def test_batched_cell_is_bit_identical(suite, name, mode, model_name):
    """A whole {1,4,16}-error cell in one lockstep batch, lane for lane."""
    app = suite[name]
    seed_base = 2000 + zlib.crc32(f"{name}/{mode.value}/{model_name}".encode()) % 10000
    plans = _cell_plans(app, (1, 4, 16), mode, model_name, seed_base)
    assert all(plan.targets for plan in plans)
    batched = app.run_batched(plans, seed=0)
    assert len(batched) == len(plans)
    for errors in (1, 4, 16):
        full_plan, = _cell_plans(app, (errors,), mode, model_name, seed_base)
        full = app.run_once(injection=full_plan, seed=0, engine="decoded")
        _assert_lane_identical(full, batched[(1, 4, 16).index(errors)])


def test_batched_catastrophic_paths_are_identical(suite):
    """Five 40-error unprotected plans per app ride one batch; the crash
    and hang lanes must match the decoded engine exactly, including fault
    messages and partial memory images."""
    outcomes = set()
    mode = ProtectionMode.UNPROTECTED
    for name in ("mcf", "blowfish", "gsm"):
        app = suite[name]
        golden = app.golden(0)
        exposed = golden.exposed_count(mode)
        plans = [plan_injections(40, exposed, mode, seed=seed)
                 for seed in (1, 2, 3, 4, 5)]
        batched = app.run_batched(plans, seed=0)
        for seed, lane in zip((1, 2, 3, 4, 5), batched):
            full_plan = plan_injections(40, exposed, mode, seed=seed)
            full = app.run_once(injection=full_plan, seed=0, engine="decoded")
            _assert_lane_identical(full, lane)
            outcomes.add(lane.outcome)
    assert len(outcomes) > 1, "plans produced only one outcome kind"


def test_batch_respects_tiny_instruction_budgets(suite):
    """A starved batch lane must hang exactly like the decoded run."""
    app = suite["mcf"]
    golden = app.golden(0)
    mode = ProtectionMode.PROTECTED
    budget = golden.executed // 2
    exposed = golden.exposed_count(mode)
    plans = [plan_injections(4, exposed, mode, seed=seed) for seed in (77, 78)]
    batched = app.run_batched(plans, seed=0, max_instructions=budget)
    for seed, lane in zip((77, 78), batched):
        full_plan = plan_injections(4, exposed, mode, seed=seed)
        full = app.run_once(injection=full_plan, seed=0,
                            max_instructions=budget, engine="decoded")
        _assert_lane_identical(full, lane)
        assert lane.outcome == "hang"
        assert lane.executed == budget


def test_batch_reused_plan_still_fires_every_injection(suite):
    """Event-laden plan objects must re-fire through the batch engine just
    as they do through the decoded engine (see the fork twin above)."""
    app = suite["adpcm"]
    golden = app.golden(0)
    mode = ProtectionMode.UNPROTECTED
    reused = plan_injections(8, golden.exposed_count(mode), mode, seed=4711)
    app.run_once(injection=reused, seed=0, engine="batch")
    events_after_first = len(reused.events)
    assert events_after_first > 0
    batched = app.run_once(injection=reused, seed=0, engine="batch")
    assert len(reused.events) > events_after_first
    fresh = plan_injections(8, golden.exposed_count(mode), mode, seed=4711)
    app.run_once(injection=fresh, seed=0, engine="decoded")   # first use
    decoded = app.run_once(injection=fresh, seed=0, engine="decoded")  # reuse
    assert batched.outcome == decoded.outcome
    assert batched.executed == decoded.executed
    assert nan_equal(batched.outputs, decoded.outputs)
    assert batched.exec_counts == decoded.exec_counts
    assert nan_equal(batched.memory.cells, decoded.memory.cells)


def test_batch_engine_requires_checkpoint_store(suite):
    app = suite["mcf"]
    plan = plan_injections(1, app.golden(0).exposed_count(ProtectionMode.PROTECTED),
                           ProtectionMode.PROTECTED, seed=3)
    machine = Machine(app.program())
    with pytest.raises(ValueError, match="checkpoint store"):
        machine.run(injection=plan, engine="batch")


def test_batch_engine_with_empty_plan_degrades_to_decoded(suite):
    """Nothing to inject means nothing to batch: run the golden path."""
    app = suite["mcf"]
    plan = plan_injections(0, 1, ProtectionMode.NONE, seed=5)
    result = app.run_once(injection=plan, seed=0, engine="batch")
    golden = app.golden(0).result
    assert result.outputs == golden.outputs
    assert result.exec_counts == golden.exec_counts


def test_batch_campaigns_match_decoded_campaigns(suite):
    """Campaign records are independent of the configured engine."""
    app = suite["adpcm"]
    decoded = CampaignRunner(
        app, CampaignConfig(runs=8, base_seed=21, engine="decoded")
    ).run_campaign(4, ProtectionMode.PROTECTED)
    batched = CampaignRunner(
        app, CampaignConfig(runs=8, base_seed=21, engine="batch")
    ).run_campaign(4, ProtectionMode.PROTECTED)
    assert batched.records == decoded.records


def test_batch_sweep_interrupted_mid_cell_resumes_bit_identically(tmp_path):
    """Kill a batch-engine sweep mid-cell, resume it (still on the batch
    engine), and the shard store must come out byte-identical to an
    uninterrupted sweep on the default fork engine — batching must be
    invisible in the persisted bytes, whatever chunk boundary it died on."""
    from repro.core.store import ShardStore
    from repro.experiments import ExperimentConfig
    from repro.experiments.sweep import SweepOrchestrator

    config = ExperimentConfig(suite_name="small", runs_per_cell=6, base_seed=29)
    grid = {"apps": ["adpcm"], "errors_axis": [2, 6], "include_table2": False}

    def run_sweep(root, engine, chunk_size, progress=None):
        campaign = CampaignConfig(runs=config.runs_per_cell,
                                  base_seed=config.base_seed, engine=engine)
        orchestrator = SweepOrchestrator(ShardStore(root), config,
                                         campaign=campaign, modes=MODES,
                                         chunk_size=chunk_size,
                                         progress=progress, **grid)
        return orchestrator.run()

    def store_bytes(root):
        return {str(path.relative_to(root)): path.read_bytes()
                for path in sorted(root.rglob("*")) if path.is_file()}

    reference_root = tmp_path / "fork-reference"
    run_sweep(reference_root, "fork", chunk_size=6)

    calls = {"left": 2}

    def interrupt(message):
        calls["left"] -= 1
        if calls["left"] <= 0:
            raise KeyboardInterrupt(f"injected interruption at {message!r}")

    batch_root = tmp_path / "batch-interrupted"
    with pytest.raises(KeyboardInterrupt):
        # chunk_size=4 against 6-run cells: the kill lands mid-cell.
        run_sweep(batch_root, "batch", chunk_size=4, progress=interrupt)
    assert store_bytes(batch_root) != store_bytes(reference_root)

    run_sweep(batch_root, "batch", chunk_size=4)
    assert store_bytes(batch_root) == store_bytes(reference_root)


def test_checkpoint_store_is_not_pickled(suite):
    """Worker payloads must not carry the snapshots (workers rebuild them)."""
    import pickle

    app = suite["mcf"]
    store = app.checkpoint_store(0)
    assert app.golden(0).checkpoint_store is store
    revived = pickle.loads(pickle.dumps(app.golden(0)))
    assert revived.checkpoint_store is None
    # The program round-trips without its decode cache either.
    program = app.program()
    assert getattr(program, "_decoded_cache", None) is not None
    revived_program = pickle.loads(pickle.dumps(program))
    assert getattr(revived_program, "_decoded_cache", None) is None
