"""Property-based tests (hypothesis) for core data structures and invariants."""

import dataclasses
import json
import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.compiler.minic import compile_source
from repro.core import StoppingRule
from repro.fidelity import percent_matching, psnr, signal_to_noise_db
from repro.isa import (
    INT_BITS,
    bits_to_int,
    flip_float_bit,
    flip_int_bit,
    int_to_bits,
    wrap_int,
)
from repro.service.spec import SPEC_MODES, SUITE_NAMES, CampaignSpec, canonical_json
from repro.sim import Machine, Outcome
from repro.workloads import bytes_to_words, words_to_bytes

int32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)
any_int = st.integers(min_value=-(2**40), max_value=2**40)


class TestEncodingProperties:
    @given(any_int)
    def test_wrap_int_is_idempotent(self, value):
        assert wrap_int(wrap_int(value)) == wrap_int(value)

    @given(int32)
    def test_wrap_int_is_identity_on_int32(self, value):
        assert wrap_int(value) == value

    @given(int32)
    def test_int_bits_roundtrip(self, value):
        assert bits_to_int(int_to_bits(value)) == value

    @given(int32, st.integers(min_value=0, max_value=INT_BITS - 1))
    def test_int_bit_flip_is_involution_and_changes_value(self, value, bit):
        flipped = flip_int_bit(value, bit)
        assert flipped != value
        assert flip_int_bit(flipped, bit) == value

    @given(st.floats(allow_nan=False, allow_infinity=False, width=64),
           st.integers(min_value=0, max_value=63))
    def test_float_bit_flip_is_involution(self, value, bit):
        flipped = flip_float_bit(value, bit)
        restored = flip_float_bit(flipped, bit)
        assert restored == value or (math.isnan(restored) and math.isnan(value))


class TestFidelityProperties:
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=64))
    def test_psnr_of_identical_images_is_max(self, pixels):
        assert psnr(pixels, pixels) == 100.0

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=64),
           st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=64))
    def test_psnr_is_bounded(self, a, b):
        size = min(len(a), len(b))
        value = psnr(a[:size], b[:size])
        assert 0.0 <= value <= 100.0

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=64))
    def test_snr_upper_bound(self, signal):
        assert signal_to_noise_db(signal, signal) <= 100.0

    @given(st.lists(st.integers(), max_size=64), st.lists(st.integers(), max_size=64))
    def test_percent_matching_bounds(self, a, b):
        value = percent_matching(a, b)
        assert 0.0 <= value <= 100.0

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=128))
    def test_word_packing_roundtrip(self, data):
        assert words_to_bytes(bytes_to_words(data), len(data)) == data


class TestCompilerExecutionProperties:
    """The compiled + simulated program must agree with Python semantics."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=-1000, max_value=1000),
           st.integers(min_value=-1000, max_value=1000),
           st.integers(min_value=1, max_value=50))
    def test_integer_expression_matches_python(self, a, b, c):
        source = f"""
        int main() {{
            int a = {a};
            int b = {b};
            int c = {c};
            return (a * 3 - b) % c + (a & 255) - (b >> 2);
        }}
        """
        program = compile_source(source)
        result = Machine(program).run()
        assert result.outcome == Outcome.COMPLETED
        expected = wrap_int((a * 3 - b) - int((a * 3 - b) / c) * c
                            + (a & 255) - (b >> 2))
        assert result.exit_value == expected

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=-500, max_value=500), min_size=1, max_size=24))
    def test_array_sum_matches_python(self, values):
        source = """
        int data[32];
        int main() {
            int total = 0;
            for (int i = 0; i < %d; i = i + 1) { total = total + data[i]; }
            return total;
        }
        """ % len(values)
        program = compile_source(source)
        machine = Machine(program)
        machine.write_global("data", values)
        result = machine.run()
        assert result.exit_value == sum(values)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=12))
    def test_loop_count_matches_python(self, n):
        source = f"""
        int main() {{
            int count = 0;
            for (int i = 0; i < {n}; i = i + 1) {{
                for (int j = 0; j <= i; j = j + 1) {{ count = count + 1; }}
            }}
            return count;
        }}
        """
        result = Machine(compile_source(source)).run()
        assert result.exit_value == n * (n + 1) // 2


# ----------------------------------------------------------------------
# CampaignSpec: the service codec and content-addressing invariants.
# ----------------------------------------------------------------------
_SPEC_FIELDS = {field.name: field.default
                for field in dataclasses.fields(CampaignSpec)}

stopping_rules = st.integers(min_value=1, max_value=8).flatmap(
    lambda floor: st.builds(
        StoppingRule,
        ci_width=st.floats(min_value=0.5, max_value=50.0),
        floor=st.just(floor),
        cap=st.integers(min_value=floor, max_value=floor + 32),
        confidence=st.floats(min_value=0.5, max_value=0.99),
    ))

mode_tuples = st.sampled_from([("protected",), ("unprotected",), SPEC_MODES])

app_tuples = st.lists(
    st.sampled_from(("adpcm", "susan", "crc32", "sha", "dijkstra", "fft")),
    min_size=1, max_size=4, unique=True).map(tuple)

error_tuples = st.lists(st.integers(min_value=0, max_value=16),
                        min_size=1, max_size=5, unique=True).map(tuple)

campaign_specs = st.builds(
    CampaignSpec,
    suite=st.sampled_from(SUITE_NAMES),
    runs_per_cell=st.integers(min_value=1, max_value=64),
    base_seed=st.integers(min_value=0, max_value=2**31 - 1),
    workloads=st.integers(min_value=1, max_value=4),
    model=st.sampled_from(("control-bit", "any-bit", "register-file")),
    stopping=st.none() | stopping_rules,
    apps=st.none() | app_tuples,
    modes=mode_tuples,
    errors=st.none() | error_tuples,
    include_table2=st.booleans(),
)


class TestCampaignSpecProperties:
    """Randomized checks of the codec the whole service layer trusts."""

    @given(campaign_specs)
    def test_canonical_roundtrip_is_identity(self, spec):
        # HTTP body -> spec -> HTTP body must be a fixed point: the
        # daemon and every client hash this encoding.
        again = CampaignSpec.from_json(json.loads(spec.canonical()))
        assert again == spec
        assert again.canonical() == spec.canonical()
        assert again.cache_key == spec.cache_key
        assert again.store_key == spec.store_key

    @given(campaign_specs,
           st.text(alphabet="abcdefghijklmnopqrstuvwxyz_",
                   min_size=1, max_size=16))
    def test_unknown_keys_are_refused_not_dropped(self, spec, name):
        assume(name not in _SPEC_FIELDS)
        data = spec.to_json()
        data[name] = 1
        with pytest.raises(ValueError, match="unknown campaign spec"):
            CampaignSpec.from_json(data)

    @given(campaign_specs, st.data())
    def test_explicit_defaults_never_change_identity(self, spec, data):
        # Default eliding means a spec spelled with any subset of its
        # elided defaults written out explicitly must decode to the very
        # same spec — same job key, same store key, byte-equal meta pin.
        encoded = spec.to_json()
        elided = sorted(name for name in _SPEC_FIELDS
                        if name not in encoded)
        chosen = data.draw(st.lists(st.sampled_from(elided), unique=True)
                           if elided else st.just([]))
        augmented = dict(encoded)
        for name in chosen:
            if name == "runs_per_cell" and spec.stopping is not None:
                continue  # pinned under adaptive sampling, never encoded
            value = _SPEC_FIELDS[name]
            augmented[name] = (list(value) if isinstance(value, tuple)
                               else value)
        again = CampaignSpec.from_json(augmented)
        assert again == spec
        assert again.cache_key == spec.cache_key
        assert canonical_json(again.store_meta()) \
            == canonical_json(spec.store_meta())

    @given(campaign_specs, st.data())
    def test_coverage_never_changes_store_identity(self, spec, data):
        # The content-addressing invariant the shared stores rely on:
        # coverage parameters select cells but may not move the store.
        other = dataclasses.replace(
            spec,
            apps=data.draw(st.none() | app_tuples),
            modes=data.draw(mode_tuples),
            errors=data.draw(st.none() | error_tuples),
            include_table2=data.draw(st.booleans()),
        )
        assert other.store_key == spec.store_key
        assert canonical_json(other.store_meta()) \
            == canonical_json(spec.store_meta())

    @given(campaign_specs, st.data())
    def test_content_changes_move_both_keys(self, spec, data):
        # And the converse: any content edit moves the store (and hence
        # the job) somewhere else entirely.
        seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1))
        assume(seed != spec.base_seed)
        other = dataclasses.replace(spec, base_seed=seed)
        assert other.store_key != spec.store_key
        assert other.cache_key != spec.cache_key
