"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.minic import compile_source
from repro.fidelity import percent_matching, psnr, signal_to_noise_db
from repro.isa import (
    INT_BITS,
    bits_to_int,
    flip_float_bit,
    flip_int_bit,
    int_to_bits,
    wrap_int,
)
from repro.sim import Machine, Outcome
from repro.workloads import bytes_to_words, words_to_bytes

int32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)
any_int = st.integers(min_value=-(2**40), max_value=2**40)


class TestEncodingProperties:
    @given(any_int)
    def test_wrap_int_is_idempotent(self, value):
        assert wrap_int(wrap_int(value)) == wrap_int(value)

    @given(int32)
    def test_wrap_int_is_identity_on_int32(self, value):
        assert wrap_int(value) == value

    @given(int32)
    def test_int_bits_roundtrip(self, value):
        assert bits_to_int(int_to_bits(value)) == value

    @given(int32, st.integers(min_value=0, max_value=INT_BITS - 1))
    def test_int_bit_flip_is_involution_and_changes_value(self, value, bit):
        flipped = flip_int_bit(value, bit)
        assert flipped != value
        assert flip_int_bit(flipped, bit) == value

    @given(st.floats(allow_nan=False, allow_infinity=False, width=64),
           st.integers(min_value=0, max_value=63))
    def test_float_bit_flip_is_involution(self, value, bit):
        flipped = flip_float_bit(value, bit)
        restored = flip_float_bit(flipped, bit)
        assert restored == value or (math.isnan(restored) and math.isnan(value))


class TestFidelityProperties:
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=64))
    def test_psnr_of_identical_images_is_max(self, pixels):
        assert psnr(pixels, pixels) == 100.0

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=64),
           st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=64))
    def test_psnr_is_bounded(self, a, b):
        size = min(len(a), len(b))
        value = psnr(a[:size], b[:size])
        assert 0.0 <= value <= 100.0

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=64))
    def test_snr_upper_bound(self, signal):
        assert signal_to_noise_db(signal, signal) <= 100.0

    @given(st.lists(st.integers(), max_size=64), st.lists(st.integers(), max_size=64))
    def test_percent_matching_bounds(self, a, b):
        value = percent_matching(a, b)
        assert 0.0 <= value <= 100.0

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=128))
    def test_word_packing_roundtrip(self, data):
        assert words_to_bytes(bytes_to_words(data), len(data)) == data


class TestCompilerExecutionProperties:
    """The compiled + simulated program must agree with Python semantics."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=-1000, max_value=1000),
           st.integers(min_value=-1000, max_value=1000),
           st.integers(min_value=1, max_value=50))
    def test_integer_expression_matches_python(self, a, b, c):
        source = f"""
        int main() {{
            int a = {a};
            int b = {b};
            int c = {c};
            return (a * 3 - b) % c + (a & 255) - (b >> 2);
        }}
        """
        program = compile_source(source)
        result = Machine(program).run()
        assert result.outcome == Outcome.COMPLETED
        expected = wrap_int((a * 3 - b) - int((a * 3 - b) / c) * c
                            + (a & 255) - (b >> 2))
        assert result.exit_value == expected

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=-500, max_value=500), min_size=1, max_size=24))
    def test_array_sum_matches_python(self, values):
        source = """
        int data[32];
        int main() {
            int total = 0;
            for (int i = 0; i < %d; i = i + 1) { total = total + data[i]; }
            return total;
        }
        """ % len(values)
        program = compile_source(source)
        machine = Machine(program)
        machine.write_global("data", values)
        result = machine.run()
        assert result.exit_value == sum(values)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=12))
    def test_loop_count_matches_python(self, n):
        source = f"""
        int main() {{
            int count = 0;
            for (int i = 0; i < {n}; i = i + 1) {{
                for (int j = 0; j <= i; j = j + 1) {{ count = count + 1; }}
            }}
            return count;
        }}
        """
        result = Machine(compile_source(source)).run()
        assert result.exit_value == n * (n + 1) // 2
