"""Unit tests for the ISA layer: registers, encodings, instructions, programs."""

import pytest

from repro.isa import (
    DataObject,
    F,
    Instruction,
    Opcode,
    Program,
    ProgramError,
    R,
    bits_to_float,
    bits_to_int,
    flip_float_bit,
    flip_int_bit,
    float_to_bits,
    int_to_bits,
    parse_register,
    wrap_int,
)
from repro.isa.opcodes import OPCODE_INFO


class TestRegisters:
    def test_int_register_name(self):
        assert R(5).name == "$5"
        assert R(5).is_int and not R(5).is_float

    def test_float_register_name(self):
        assert F(3).name == "$f3"
        assert F(3).is_float

    def test_parse_register_roundtrip(self):
        assert parse_register("$17") == R(17)
        assert parse_register("$f12") == F(12)
        assert parse_register("$sp") == R(29)
        assert parse_register("$ra") == R(31)

    def test_parse_register_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_register("r5")
        with pytest.raises(ValueError):
            parse_register("$99")

    def test_register_index_bounds(self):
        with pytest.raises(ValueError):
            R(32)
        with pytest.raises(ValueError):
            F(-1)


class TestEncoding:
    def test_wrap_int_positive_overflow(self):
        assert wrap_int(2**31) == -(2**31)
        assert wrap_int(2**31 - 1) == 2**31 - 1

    def test_wrap_int_negative(self):
        assert wrap_int(-(2**31) - 1) == 2**31 - 1

    def test_int_bits_roundtrip(self):
        for value in (0, 1, -1, 12345, -54321, 2**31 - 1, -(2**31)):
            assert bits_to_int(int_to_bits(value)) == value

    def test_flip_int_bit_is_involution(self):
        value = 0x1234
        assert flip_int_bit(flip_int_bit(value, 7), 7) == value

    def test_flip_int_sign_bit(self):
        assert flip_int_bit(0, 31) == -(2**31)

    def test_flip_int_bit_out_of_range(self):
        with pytest.raises(ValueError):
            flip_int_bit(0, 32)

    def test_float_bits_roundtrip(self):
        for value in (0.0, 1.5, -3.75, 1e300, -1e-300):
            assert bits_to_float(float_to_bits(value)) == value

    def test_flip_float_bit_is_involution(self):
        value = 3.14159
        assert flip_float_bit(flip_float_bit(value, 52), 52) == value

    def test_flip_float_exponent_changes_magnitude(self):
        assert flip_float_bit(1.0, 62) != 1.0


class TestInstructions:
    def test_defs_and_uses(self):
        instruction = Instruction(Opcode.ADD, rd=R(3), rs1=R(4), rs2=R(5))
        assert instruction.defs() == (R(3),)
        assert set(instruction.uses()) == {R(4), R(5)}

    def test_branch_has_no_defs(self):
        instruction = Instruction(Opcode.BNE, rs1=R(3), rs2=R(10), label="loop")
        assert instruction.defs() == ()
        assert instruction.is_branch

    def test_store_uses_both_registers(self):
        instruction = Instruction(Opcode.SW, rs1=R(29), rs2=R(8), imm=4)
        assert R(8) in instruction.uses() and R(29) in instruction.uses()

    def test_render_contains_mnemonic(self):
        instruction = Instruction(Opcode.ADDI, rd=R(2), rs1=R(0), imm=7)
        assert "addi" in instruction.render()

    def test_every_opcode_is_classified(self):
        assert set(OPCODE_INFO) == set(Opcode)

    def test_arithmetic_classification(self):
        assert Instruction(Opcode.MUL, rd=R(1), rs1=R(2), rs2=R(3)).is_arithmetic
        assert not Instruction(Opcode.LW, rd=R(1), rs1=R(2), imm=0).is_arithmetic
        assert Instruction(Opcode.LA, rd=R(1), label="x").is_arithmetic


class TestProgram:
    def _simple_program(self):
        program = Program()
        program.add_data(DataObject(name="buffer", size=4))
        program.add_label("main")
        program.add_instruction(Instruction(Opcode.LI, rd=R(2), imm=1))
        program.add_instruction(Instruction(Opcode.HALT))
        return program

    def test_finalize_assigns_data_addresses(self):
        program = self._simple_program().finalize()
        assert program.data_address("buffer") >= 0x1000

    def test_duplicate_label_rejected(self):
        program = self._simple_program()
        with pytest.raises(ProgramError):
            program.add_label("main")

    def test_unknown_branch_target_rejected(self):
        program = self._simple_program()
        program.add_instruction(Instruction(Opcode.J, label="nowhere"))
        with pytest.raises(ProgramError):
            program.finalize()

    def test_missing_entry_rejected(self):
        program = Program(entry="start")
        program.add_instruction(Instruction(Opcode.HALT))
        with pytest.raises(ProgramError):
            program.finalize()

    def test_data_object_validation(self):
        with pytest.raises(ProgramError):
            DataObject(name="bad", size=0)
        with pytest.raises(ProgramError):
            DataObject(name="bad", size=1, initial=[1, 2])

    def test_listing_mentions_labels_and_data(self):
        program = self._simple_program().finalize()
        listing = program.listing()
        assert "main:" in listing
        assert ".data buffer" in listing
