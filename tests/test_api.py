"""The ``repro.api`` facade: one front door for CLI, daemon and library.

Covers the public surface (`__all__`, lazy re-export from the top-level
package), the ``submit`` store/url contract, artefact rendering through
the facade against a real store, and the deprecation shim on the old
direct-construction path.
"""

import warnings

import pytest

import repro
import repro.api as api
from repro.core import ShardStore
from repro.service.spec import CampaignSpec
from repro.sim import ProtectionMode

SPEC = CampaignSpec(suite="small", runs_per_cell=3, base_seed=11,
                    apps=("susan",), errors=(0, 2), include_table2=False)


@pytest.fixture(scope="module")
def swept(tmp_path_factory):
    """One tiny campaign, swept once and shared by the read-only tests."""
    root = tmp_path_factory.mktemp("api-store")
    job = api.submit(SPEC, root)
    assert job["state"] == "complete"
    return root


class TestSurface:
    def test_all_names_exist_and_are_sorted(self):
        assert api.__all__ == sorted(api.__all__)
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_top_level_package_re_exports_the_facade(self):
        # PEP 562 lazy exports: `repro.submit is repro.api.submit` without
        # repro/__init__ importing the service layer eagerly.
        assert repro.CampaignSpec is CampaignSpec
        assert repro.submit is api.submit
        assert repro.tables is api.tables
        assert "submit" in repro.__all__ and "CampaignSpec" in repro.__all__
        with pytest.raises(AttributeError):
            repro.not_an_export

    def test_sweep_orchestrator_shim_warns_but_works(self):
        import repro.experiments as experiments

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shimmed = experiments.SweepOrchestrator
        from repro.experiments.sweep import SweepOrchestrator
        assert shimmed is SweepOrchestrator
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "repro.api.submit" in str(deprecations[0].message)


class TestSubmit:
    def test_requires_exactly_one_of_store_and_url(self, tmp_path):
        with pytest.raises(ValueError, match="exactly one of"):
            api.submit(SPEC)
        with pytest.raises(ValueError, match="exactly one of"):
            api.submit(SPEC, tmp_path, url="http://127.0.0.1:1")

    def test_remote_submit_refuses_execution_options(self, tmp_path):
        with pytest.raises(ValueError, match="daemon's to choose"):
            api.submit(SPEC, url="http://127.0.0.1:1", parallel=4)

    def test_unreachable_daemon_is_a_connection_error(self):
        with pytest.raises(ConnectionError, match="unreachable"):
            api.submit(SPEC, url="http://127.0.0.1:9", wait=False)

    def test_local_payload_matches_the_daemon_shape(self, swept):
        job = api.submit(SPEC, swept)  # warm resubmit: pure cache hit
        assert set(job) == {"job", "store", "state", "error", "spec",
                            "report", "executors_started", "lane",
                            "restored", "submitted", "finished", "progress"}
        assert job["job"] == SPEC.cache_key
        assert job["store"] == SPEC.store_key
        assert job["state"] == "complete"
        assert job["spec"] == SPEC.to_json()
        assert job["report"]["runs_executed"] == 0
        assert job["executors_started"] == 0
        # Local runs have no scheduler lane and no journal behind them,
        # but the keys exist so callers are insensitive to where the
        # campaign ran.
        assert job["lane"] is None
        assert job["restored"] is False
        assert job["finished"] >= job["submitted"] > 0


class TestReads:
    def test_status_requires_exactly_one_of_store_and_url(self, swept):
        with pytest.raises(ValueError, match="exactly one of"):
            api.status()
        with pytest.raises(ValueError, match="exactly one of"):
            api.status(swept, url="http://127.0.0.1:1")

    def test_status_url_against_an_unreachable_daemon(self):
        with pytest.raises(ConnectionError, match="unreachable"):
            api.status(url="http://127.0.0.1:9", job="deadbeef")

    def test_status_infers_the_spec_from_store_meta(self, swept):
        statuses = api.status(swept, SPEC)
        assert len(statuses) == 4
        assert all(status.complete for status in statuses)
        # Without a spec the full default grid is measured against the
        # store's own pinned parameters — more cells, mostly unswept.
        assert len(api.status(swept)) > 4

    def test_results_is_a_pure_cache_read(self, swept):
        records = api.results(swept, "susan", "protected", 2)
        assert len(records) == 3
        assert records == api.results(swept, "susan",
                                      ProtectionMode.PROTECTED, 2)
        assert api.results(swept, "susan", "protected", 99) == []

    def test_figures_render_through_the_facade(self, swept):
        figures = api.figures(swept, ["figure1"], errors=SPEC.errors)
        assert len(figures) == 1
        assert figures[0].to_table().strip()

    def test_unknown_artefacts_raise_value_error(self, swept):
        with pytest.raises(ValueError, match="unknown figure"):
            api.figures(swept, ["figure9"])
        with pytest.raises(ValueError, match="unknown table"):
            api.tables(swept, [7])

    def test_tables_accept_a_shard_store_instance(self, swept):
        rendered = api.tables(ShardStore(swept), [1])
        assert "Table 1" in rendered[0].to_text()
