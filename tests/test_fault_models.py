"""Tests of the pluggable fault-model subsystem (ISSUE 4).

Covers: the registry and the determinism contract (bit-identical records
across engines and executor backends for every model), the default
model's backwards compatibility, model-specific corruption semantics,
fork-engine fallback for checkpoint-incompatible models, and the shard
store's model separation.
"""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.apps import create_app
from repro.core import CampaignConfig, CampaignRunner, RunRecord, ShardStore
from repro.core.store import StoreMismatchError
from repro.sim import (
    CONTROL_BIT,
    MODEL_NAMES,
    Machine,
    ProtectionMode,
    get_model,
    plan_injections,
)

SRC_DIR = Path(__file__).resolve().parents[1] / "src"
NON_DEFAULT_MODELS = tuple(name for name in MODEL_NAMES if name != CONTROL_BIT)


@pytest.fixture(scope="module")
def adpcm():
    app = create_app("adpcm")
    app.golden(0)
    return app


def result_fields(run):
    """The comparable surface of a RunResult (everything observable)."""
    return (run.outcome, run.executed, run.exit_value, run.outputs,
            run.fault, run.fault_kind, run.exec_counts, run.memory.cells)


def make_plan(app, model_name, mode, errors, seed=1234):
    golden = app.golden(0)
    model = get_model(model_name)
    return plan_injections(errors, model.population(golden, mode), mode,
                           seed=seed, model=model_name)


class TestRegistry:
    def test_all_models_registered(self):
        assert set(MODEL_NAMES) == {
            "control-bit", "data-bit", "memory-bit", "multi-bit", "opcode",
        }

    def test_unknown_model_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown fault model"):
            get_model("alpha-particle")
        with pytest.raises(ValueError, match="unknown fault model"):
            CampaignConfig(model="alpha-particle")

    def test_default_plan_is_control_bit(self, adpcm):
        golden = adpcm.golden(0)
        legacy = plan_injections(3, golden.exposed_protected,
                                 ProtectionMode.PROTECTED, seed=7)
        explicit = plan_injections(3, golden.exposed_protected,
                                   ProtectionMode.PROTECTED, seed=7,
                                   model=CONTROL_BIT)
        assert legacy.model == CONTROL_BIT
        assert legacy.targets == explicit.targets
        assert legacy.fork_compatible

    def test_reference_engine_rejects_non_default_models(self, adpcm):
        plan = make_plan(adpcm, "data-bit", ProtectionMode.UNPROTECTED, 2)
        machine = Machine(adpcm.program())
        with pytest.raises(ValueError, match="reference engine"):
            machine.run(injection=plan, engine="reference")
        with pytest.raises(ValueError, match="reference"):
            CampaignConfig(engine="reference", model="data-bit")


class TestDeterminismAcrossEngines:
    """Decoded and fork engines must agree for every model.

    Fork-compatible models actually resume from checkpoints; the
    memory-bit model exercises the full-run fallback — either way the
    observable RunResult must be identical to plain decoded execution.
    """

    @pytest.mark.parametrize("model_name", MODEL_NAMES)
    @pytest.mark.parametrize("mode", [ProtectionMode.PROTECTED,
                                      ProtectionMode.UNPROTECTED])
    @pytest.mark.parametrize("errors", [1, 8])
    def test_fork_matches_decoded(self, adpcm, model_name, mode, errors):
        decoded = adpcm.run_once(
            injection=make_plan(adpcm, model_name, mode, errors),
            seed=0, engine="decoded")
        forked = adpcm.run_once(
            injection=make_plan(adpcm, model_name, mode, errors),
            seed=0, engine="fork")
        assert result_fields(decoded) == result_fields(forked)

    @pytest.mark.parametrize("model_name", MODEL_NAMES)
    def test_repeat_runs_are_identical(self, adpcm, model_name):
        runs = [
            adpcm.run_once(
                injection=make_plan(adpcm, model_name,
                                    ProtectionMode.UNPROTECTED, 4),
                seed=0)
            for _ in range(2)
        ]
        assert result_fields(runs[0]) == result_fields(runs[1])
        assert runs[0].injection.events == runs[1].injection.events

    def test_memory_bit_is_not_fork_compatible(self, adpcm):
        plan = make_plan(adpcm, "memory-bit", ProtectionMode.PROTECTED, 2)
        assert not plan.fork_compatible
        # The fallback must not require a checkpoint store at all.
        machine = Machine(adpcm.program())
        adpcm.apply_workload(machine, adpcm.workload(0))
        result = machine.run(injection=plan, engine="fork", checkpoints=None)
        assert result.outcome in ("completed", "crash", "hang")


class TestModelSemantics:
    def test_data_bit_only_hits_low_reliability_writes(self, adpcm):
        program = adpcm.program()
        plan = make_plan(adpcm, "data-bit", ProtectionMode.UNPROTECTED, 16)
        adpcm.run_once(injection=plan, seed=0)
        assert plan.events
        for event in plan.events:
            instruction = program.instructions[event.static_index]
            assert instruction.low_reliability
            assert instruction.writes_register

    def test_control_bit_unprotected_hits_control_writes_too(self, adpcm):
        """The contrast that motivates the data-bit model: unprotected
        control-bit exposure includes instructions the static analysis
        did NOT tag low-reliability."""
        program = adpcm.program()
        hit_protected = set()
        for seed in range(6):
            plan = plan_injections(
                16, adpcm.golden(0).exposed_unprotected,
                ProtectionMode.UNPROTECTED, seed=seed)
            adpcm.run_once(injection=plan, seed=0)
            hit_protected.update(
                event.static_index for event in plan.events
                if not program.instructions[event.static_index].low_reliability
            )
        assert hit_protected  # some flips landed on control data

    def test_memory_bit_events_carry_addresses(self, adpcm):
        plan = make_plan(adpcm, "memory-bit", ProtectionMode.PROTECTED, 4)
        adpcm.run_once(injection=plan, seed=0)
        assert plan.events
        for event in plan.events:
            assert event.address is not None
            assert event.static_index == -1
            assert event.opcode == "MEMORY"

    def test_multi_bit_flips_adjacent_burst(self, adpcm):
        plan = make_plan(adpcm, "multi-bit", ProtectionMode.UNPROTECTED, 12)
        adpcm.run_once(injection=plan, seed=0)
        assert plan.events
        for event in plan.events:
            if isinstance(event.original, int):
                diff = (event.original ^ event.corrupted) & 0xFFFFFFFF
            else:
                import struct
                diff = (struct.unpack("<Q", struct.pack("<d", event.original))[0]
                        ^ struct.unpack("<Q", struct.pack("<d", event.corrupted))[0])
            assert diff  # something flipped
            # The flipped bits are one contiguous burst of width 1-4
            # (bursts starting near the MSB are truncated at the word top).
            compact = diff >> ((diff & -diff).bit_length() - 1)
            assert compact & (compact + 1) == 0  # contiguous ones
            assert 1 <= bin(compact).count("1") <= 4
            assert event.detail.startswith("burst=")

    def test_opcode_substitution_events(self, adpcm):
        plan = make_plan(adpcm, "opcode", ProtectionMode.UNPROTECTED, 12)
        adpcm.run_once(injection=plan, seed=0)
        assert plan.events
        for event in plan.events:
            assert event.bit == -1
            assert (event.detail == "random-word"
                    or event.detail.startswith("op="))
            # The victim operation is replaced, not executed: there is no
            # "original result" at a fired occurrence.
            assert event.original is None


class TestDeterminismAcrossExecutors:
    """Acceptance: every model is deterministic across serial/pool/socket."""

    ERRORS = 3
    RUNS = 4

    def _records(self, app, model_name, executor, workers=()):
        config = CampaignConfig(
            runs=self.RUNS, base_seed=31, model=model_name,
            executor=executor, parallel=2, parallel_threshold=1,
            workers=workers,
        )
        runner = CampaignRunner(app, config)
        return runner.run_records(self.ERRORS, ProtectionMode.UNPROTECTED)

    @pytest.mark.parametrize("model_name", NON_DEFAULT_MODELS)
    def test_pool_matches_serial(self, adpcm, model_name):
        serial = self._records(adpcm, model_name, "serial")
        pool = self._records(adpcm, model_name, "pool")
        assert serial == pool
        assert all(record.model == model_name for record in serial)

    def test_socket_matches_serial(self, adpcm):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.exec.worker", "--port", "0",
             "--max-sessions", str(len(NON_DEFAULT_MODELS))],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        try:
            banner = process.stdout.readline().strip()
            address = re.search(r"listening on (\S+:\d+)$", banner).group(1)
            for model_name in NON_DEFAULT_MODELS:
                serial = self._records(adpcm, model_name, "serial")
                remote = self._records(adpcm, model_name, "socket",
                                       workers=(address,))
                assert serial == remote, model_name
        finally:
            process.terminate()
            process.wait(timeout=10)


class TestRecordEncoding:
    def test_default_model_elided_from_json(self):
        record = RunRecord(run_index=0, seed=0, mode=ProtectionMode.PROTECTED,
                           errors_requested=1, errors_injected=1,
                           outcome="completed", executed=10)
        assert "model" not in record.to_json()
        assert RunRecord.from_json(record.to_json()) == record

    def test_non_default_model_round_trips(self):
        record = RunRecord(run_index=0, seed=0, mode=ProtectionMode.PROTECTED,
                           errors_requested=1, errors_injected=1,
                           outcome="completed", executed=10, model="memory-bit")
        data = json.loads(json.dumps(record.to_json()))
        assert data["model"] == "memory-bit"
        assert RunRecord.from_json(data) == record


class TestStoreModelSeparation:
    def _record(self, model, run_index=0):
        return RunRecord(run_index=run_index, seed=0,
                         mode=ProtectionMode.PROTECTED, errors_requested=2,
                         errors_injected=2, outcome="completed", executed=5,
                         model=model)

    def test_shard_paths_do_not_collide(self, tmp_path):
        default = ShardStore(tmp_path)
        data_bit = ShardStore(tmp_path, model="data-bit")
        mode = ProtectionMode.PROTECTED
        assert (default.shard_path("adpcm", mode, 2)
                != data_bit.shard_path("adpcm", mode, 2))
        assert default.shard_path("adpcm", mode, 2).name == "protected-e2.jsonl"
        assert "data-bit" in data_bit.shard_path("adpcm", mode, 2).name

    def test_stores_only_see_their_own_model(self, tmp_path):
        mode = ProtectionMode.PROTECTED
        default = ShardStore(tmp_path)
        data_bit = ShardStore(tmp_path, model="data-bit")
        default.append_records("adpcm", mode, 2, [self._record(CONTROL_BIT)])
        data_bit.append_records("adpcm", mode, 2, [self._record("data-bit"),
                                                   self._record("data-bit", 1)])
        assert len(default.load_records("adpcm", mode, 2)) == 1
        assert len(data_bit.load_records("adpcm", mode, 2)) == 2
        assert [shard[3].name for shard in default.shards()] == \
            ["protected-e2.jsonl"]
        assert [shard[3].name for shard in data_bit.shards()] == \
            ["protected-e2@data-bit.jsonl"]

    def test_legacy_meta_defaults_to_control_bit(self, tmp_path):
        store = ShardStore(tmp_path)
        store.ensure_meta({"runs_per_cell": 4})  # legacy: no model key
        # Resuming under the default model is fine...
        store.ensure_meta({"runs_per_cell": 4, "model": CONTROL_BIT})
        # ...but any other model is a mismatch.
        with pytest.raises(StoreMismatchError):
            store.ensure_meta({"runs_per_cell": 4, "model": "memory-bit"})
