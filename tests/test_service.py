"""Campaign-as-a-service tests (ISSUE 8).

Covers the service layer end to end: the ``CampaignSpec`` canonical
codec and content addressing, the byte-compatibility of spec-pinned
``meta.json`` with the pre-service orchestrator, the asyncio daemon's
HTTP API, the content-addressed cache semantics (identical resubmission
= zero executor invocations; partial overlap schedules only the missing
cells; concurrent overlapping specs never duplicate a cell), worker
auto-registration, and the service-smoke scenario: a daemon-run campaign
over a fleet that loses a worker mid-campaign still produces a store
byte-identical to a serial sweep.
"""

import json
import os
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import submit
from repro.core import ShardStore, StoppingRule
from repro.exec import SocketExecutor
from repro.experiments import ExperimentConfig
from repro.experiments.sweep import SweepOrchestrator
from repro.service import CampaignService, CampaignSpec, ServiceClient
from repro.service.client import ServiceError
from repro.service.daemon import WorkerRegistry
from repro.sim import ProtectionMode

SRC_DIR = Path(__file__).resolve().parents[1] / "src"

#: Tiny adpcm grid: fast enough to sweep many times per test module.
QUICK = dict(suite="small", runs_per_cell=3, base_seed=11, apps=("adpcm",),
             errors=(0, 2), include_table2=False)


def quick_spec(**overrides) -> CampaignSpec:
    return CampaignSpec(**{**QUICK, **overrides})


def store_bytes(store: ShardStore):
    """Relative path -> bytes for a store's record payload.

    Excludes the fleet.json telemetry sidecar and dot-named control
    files (the ``.lock`` advisory lock) — neither carries record bytes.
    """
    return {
        str(path.relative_to(store.root)): path.read_bytes()
        for path in sorted(store.root.rglob("*"))
        if path.is_file() and path.name != "fleet.json"
        and not path.name.startswith(".")
    }


# ----------------------------------------------------------------------
# CampaignSpec: canonical codec + content addressing.
# ----------------------------------------------------------------------
class TestCampaignSpec:
    def test_roundtrip_through_canonical_json(self):
        spec = quick_spec()
        again = CampaignSpec.from_json(json.loads(spec.canonical()))
        assert again == spec
        assert again.cache_key == spec.cache_key

    def test_defaults_are_elided_so_equal_specs_encode_equally(self):
        # A spec spelled with explicit defaults must hash identically to
        # one that never mentioned them.
        explicit = CampaignSpec(suite="small", runs_per_cell=8,
                                base_seed=2006, workloads=1,
                                model="control-bit", include_table2=True)
        implicit = CampaignSpec()
        assert explicit.to_json() == {} == implicit.to_json()
        assert explicit.cache_key == implicit.cache_key

    def test_adaptive_spec_roundtrips_and_elides_runs(self):
        spec = quick_spec(stopping=StoppingRule(ci_width=25.0, floor=2,
                                                cap=8))
        encoded = spec.to_json()
        assert "runs_per_cell" not in encoded
        assert encoded["stopping"]["ci_width"] == 25.0
        assert CampaignSpec.from_json(encoded) == spec

    def test_unknown_fields_are_refused_not_dropped(self):
        with pytest.raises(ValueError, match="unknown campaign spec field"):
            CampaignSpec.from_json({"runs_per_cel": 4})

    @pytest.mark.parametrize("bad", [
        {"suite": "huge"},
        {"runs_per_cell": 0},
        {"workloads": 0},
        {"modes": []},
        {"modes": ["armored"]},
        {"errors": [-1]},
        {"apps": []},
    ])
    def test_invalid_specs_are_rejected(self, bad):
        with pytest.raises(ValueError):
            CampaignSpec.from_json(bad)

    def test_coverage_changes_job_key_but_not_store_key(self):
        narrow = quick_spec(errors=(0,))
        wide = quick_spec(errors=(0, 2))
        assert narrow.cache_key != wide.cache_key
        assert narrow.store_key == wide.store_key  # same record bytes

    def test_content_changes_both_keys(self):
        assert quick_spec().store_key != quick_spec(base_seed=12).store_key
        assert quick_spec().cache_key != quick_spec(base_seed=12).cache_key

    def test_store_meta_matches_pre_service_pin(self, tmp_path):
        # The spec's store_meta() must be byte-identical (as the
        # canonical meta.json) to what the orchestrator has always
        # pinned, so service stores and CLI stores resume each other.
        spec = quick_spec()
        submit(spec, tmp_path / "spec")
        legacy = ShardStore(tmp_path / "legacy")
        config = ExperimentConfig(suite_name="small", runs_per_cell=3,
                                  base_seed=11)
        SweepOrchestrator(legacy, config, apps=["adpcm"], errors_axis=[0, 2],
                          include_table2=False).run()
        spec_meta = (tmp_path / "spec" / "meta.json").read_bytes()
        legacy_meta = (tmp_path / "legacy" / "meta.json").read_bytes()
        assert spec_meta == legacy_meta
        assert json.loads(spec_meta) == spec.store_meta()

    def test_from_store_meta_rebuilds_content_parameters(self, tmp_path):
        spec = quick_spec(stopping=StoppingRule(ci_width=25.0, floor=2,
                                                cap=8))
        rebuilt = CampaignSpec.from_store_meta(spec.store_meta(),
                                               apps=spec.apps,
                                               errors=spec.errors,
                                               include_table2=False)
        assert rebuilt.store_key == spec.store_key
        assert rebuilt.stopping == spec.stopping


# ----------------------------------------------------------------------
# Local cache semantics through the api facade.
# ----------------------------------------------------------------------
class TestCacheSemantics:
    def test_identical_resubmission_executes_nothing(self, tmp_path):
        spec = quick_spec()
        first = submit(spec, tmp_path / "store")
        assert first["state"] == "complete"
        assert first["report"]["runs_executed"] == 12
        assert first["executors_started"] >= 1
        again = submit(spec, tmp_path / "store")
        assert again["state"] == "complete"
        assert again["report"]["runs_executed"] == 0
        assert again["report"]["runs_reused"] == 12
        # The cache-hit contract: no executor backend is even built.
        assert again["executors_started"] == 0

    def test_partial_overlap_schedules_only_missing_cells(self, tmp_path):
        submit(quick_spec(errors=(0,)), tmp_path / "store")
        wide = submit(quick_spec(errors=(0, 2)), tmp_path / "store")
        # 4 cells of 3 runs; the two e=0 cells are already on disk.
        assert wide["report"]["runs_reused"] == 6
        assert wide["report"]["runs_executed"] == 6
        assert wide["state"] == "complete"

    def test_spec_driven_store_is_byte_identical_to_cli_store(self, tmp_path):
        submit(quick_spec(), tmp_path / "api")
        legacy = ShardStore(tmp_path / "cli")
        config = ExperimentConfig(suite_name="small", runs_per_cell=3,
                                  base_seed=11)
        SweepOrchestrator(legacy, config, apps=["adpcm"], errors_axis=[0, 2],
                          include_table2=False).run()
        assert store_bytes(ShardStore(tmp_path / "api")) == store_bytes(legacy)


# ----------------------------------------------------------------------
# Worker registry.
# ----------------------------------------------------------------------
class TestWorkerRegistry:
    def test_heartbeats_expire_after_the_ttl(self):
        registry = WorkerRegistry(ttl=0.2)
        registry.register("127.0.0.1:7006")
        assert registry.live() == ["127.0.0.1:7006"]
        time.sleep(0.3)
        assert registry.live() == []

    def test_deregister_drops_immediately(self):
        registry = WorkerRegistry(ttl=60.0)
        registry.register("127.0.0.1:7006")
        registry.forget("127.0.0.1:7006")
        assert registry.live() == []

    def test_malformed_addresses_are_refused(self):
        registry = WorkerRegistry()
        with pytest.raises(ValueError):
            registry.register("not-an-address")

    def test_live_is_safe_against_concurrent_expiry_and_registration(self):
        # Regression: live() used to rebind the underlying dict while
        # pruning, so a register() racing the prune could land in the
        # abandoned dict and be lost.  With a 0 TTL every entry expires
        # instantly, maximising prune traffic; hammer live() and
        # register() from threads and require no exception and no
        # corrupted registry.
        registry = WorkerRegistry(ttl=0.0)
        stop = threading.Event()
        errors = []

        def hammer(action):
            try:
                while not stop.is_set():
                    action()
            except Exception as exc:  # pragma: no cover — the regression
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer,
                             args=(lambda: registry.register(
                                 "127.0.0.1:7006"),)),
            threading.Thread(target=hammer, args=(registry.live,)),
            threading.Thread(target=hammer, args=(registry.snapshot,)),
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.5)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        # A registration that happened after the last prune is visible
        # through a positive-TTL read of the same (never-rebound) dict.
        registry.register("127.0.0.1:7006")
        registry.ttl = 60.0
        assert registry.live() == ["127.0.0.1:7006"]


# ----------------------------------------------------------------------
# The daemon over real HTTP.
# ----------------------------------------------------------------------
@pytest.fixture()
def service(tmp_path):
    daemon = CampaignService(tmp_path / "cache")
    daemon.start_in_background()
    yield daemon
    daemon.shutdown()


class TestDaemonHttp:
    def test_submit_wait_and_read_results(self, service):
        client = ServiceClient(service.url)
        assert client.health()["status"] == "ok"
        spec = quick_spec()
        job = client.submit(spec)
        assert job["state"] in ("queued", "running", "complete")
        final = client.wait(job["job"], timeout=300)
        assert final["state"] == "complete"
        assert final["report"]["cells_complete"] == 4
        # Results come straight from the daemon's content-addressed store.
        payload = client.results(job["job"], "adpcm", "protected", 2)
        store = service.store_for(spec)
        records = store.load_records("adpcm", ProtectionMode.PROTECTED, 2)
        assert payload["records"] == [record.to_json() for record in records]
        status = client.status(job["job"], cells=True)
        assert len(status["cells"]) == 4
        assert all(cell["complete"] for cell in status["cells"])

    def test_resubmission_coalesces_onto_the_same_job(self, service):
        client = ServiceClient(service.url)
        spec = quick_spec()
        first = client.wait(client.submit(spec)["job"], timeout=300)
        executed = first["report"]["runs_executed"]
        again = client.submit(spec)
        # Same job object, no new work queued.
        assert again["job"] == first["job"]
        assert again["state"] == "complete"
        assert again["report"]["runs_executed"] == executed

    def test_warm_store_resubmission_is_a_pure_cache_hit(self, tmp_path,
                                                         service):
        # A *restarted* daemon (journal-restored job table, same cache
        # root) re-verifies a resubmitted finished spec through the
        # cache: zero runs executed, zero executor backends constructed.
        client = ServiceClient(service.url)
        spec = quick_spec()
        client.wait(client.submit(spec)["job"], timeout=300)
        service.shutdown()
        reborn = CampaignService(service.root)
        reborn.start_in_background()
        try:
            client = ServiceClient(reborn.url)
            final = client.wait(client.submit(spec)["job"], timeout=60)
            assert final["state"] == "complete"
            assert final["report"]["runs_executed"] == 0
            assert final["report"]["runs_reused"] == 12
            assert final["executors_started"] == 0
        finally:
            reborn.shutdown()

    def test_concurrent_overlapping_specs_never_duplicate_a_cell(self,
                                                                 service):
        # Two clients race overlapping coverage; the single-flight
        # scheduler means the union of cells is computed exactly once.
        client = ServiceClient(service.url)
        narrow = quick_spec(errors=(0,))
        wide = quick_spec(errors=(0, 2))
        jobs = [client.submit(narrow)["job"], client.submit(wide)["job"]]
        finals = [client.wait(job, timeout=300) for job in jobs]
        assert all(final["state"] == "complete" for final in finals)
        executed = sum(final["report"]["runs_executed"] for final in finals)
        # 4 distinct cells x 3 runs across both jobs, no cell twice.
        assert executed == 12

    def test_bad_spec_is_a_400_with_the_validation_message(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(ServiceError, match="unknown campaign spec"):
            client._request("POST", "/v1/campaigns", body={"bogus": 1})

    def test_unknown_job_is_a_404(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(ServiceError, match="unknown campaign job"):
            client.status("deadbeef")

    def test_unknown_path_is_a_404(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(ServiceError):
            client._request("GET", "/v2/nothing")

    def test_tables_render_from_the_job_store(self, service):
        client = ServiceClient(service.url)
        # Cover adpcm's Table 2 operating points so table 2 can render.
        spec = quick_spec(errors=None, include_table2=True)
        job = client.wait(client.submit(spec)["job"], timeout=600)
        assert job["state"] == "complete"
        text = client.tables(job["job"], [2])
        assert "Table 2" in text

    def test_worker_registration_over_http(self, service):
        client = ServiceClient(service.url)
        client.register_worker("127.0.0.1:7006")
        assert [entry["address"] for entry in client.workers()] \
            == ["127.0.0.1:7006"]
        client.register_worker("127.0.0.1:7006", deregister=True)
        assert client.workers() == []


# ----------------------------------------------------------------------
# Distributed service smoke: registered fleet + worker loss.
# ----------------------------------------------------------------------
def spawn_worker(*extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.exec.worker", "--listen",
         "127.0.0.1:0", *extra],
        stdout=subprocess.PIPE, text=True, env=env,
    )
    banner = process.stdout.readline().strip()
    address = re.search(r"listening on (\S+:\d+)$", banner).group(1)
    return process, address


@pytest.fixture()
def fast_liveness(monkeypatch):
    """Shrink liveness constants so losing a worker costs tenths of
    seconds, not the production tens (daemon jobs run in this process)."""
    monkeypatch.setattr(SocketExecutor, "HEARTBEAT_INTERVAL", 0.3)
    monkeypatch.setattr(SocketExecutor, "RECONNECT_BASE", 0.05)
    monkeypatch.setattr(SocketExecutor, "RECONNECT_CAP", 0.2)
    monkeypatch.setattr(SocketExecutor, "RECONNECT_ATTEMPTS", 3)


SMOKE_SPEC = CampaignSpec(suite="small", runs_per_cell=4, base_seed=23,
                          apps=("susan",), modes=("protected",),
                          errors=(3,), include_table2=False)


class TestServiceSmoke:
    def test_fleet_loss_mid_campaign_stays_byte_identical(self, tmp_path,
                                                          fast_liveness):
        # The CI service-smoke scenario: daemon + two registered workers,
        # one killed mid-campaign; the store must be byte-identical to a
        # serial sweep of the same spec.
        serial_root = tmp_path / "serial"
        submit(SMOKE_SPEC, serial_root)

        daemon = CampaignService(tmp_path / "cache", worker_ttl=30.0)
        daemon.start_in_background()
        workers = [spawn_worker() for _ in range(2)]
        try:
            client = ServiceClient(daemon.url)
            for _process, address in workers:
                client.register_worker(address)
            victim = workers[0][0]
            killer = threading.Timer(0.5, victim.kill)
            killer.start()
            job = client.submit(SMOKE_SPEC)
            final = client.wait(job["job"], timeout=600)
            killer.cancel()
            assert final["state"] == "complete"
            fleet = final["report"]["fleet"]
            assert fleet, "campaign did not run on the registered fleet"
            assert store_bytes(daemon.store_for(SMOKE_SPEC)) \
                == store_bytes(ShardStore(serial_root))
        finally:
            for process, _address in workers:
                process.kill()
                process.wait(timeout=10)
            daemon.shutdown()

    def test_late_worker_joins_via_fleet_source(self):
        # A socket executor whose fleet_source reports a new address
        # folds it in as a fresh slot — the mechanism that lets workers
        # register mid-campaign and join at the next chunk boundary.
        config = ExperimentConfig(suite_name="small", runs_per_cell=4,
                                  base_seed=23)
        app = config.suite()["susan"]
        executor = SocketExecutor(app, config.campaign_config())
        fleet = []
        executor.fleet_source = lambda: list(fleet)
        fleet.append("127.0.0.1:7006")
        executor._refresh_fleet()
        assert [slot.address for slot in executor._slots] \
            == ["127.0.0.1:7006"]
        # Duplicate and malformed registry entries never crash a campaign.
        fleet.extend(["127.0.0.1:7006", "bogus"])
        executor._refresh_fleet()
        assert [slot.address for slot in executor._slots] \
            == ["127.0.0.1:7006"]
        # A registry that throws is ignored, not fatal.
        executor.fleet_source = lambda: 1 / 0
        executor._refresh_fleet()
        executor.close()
