"""Unit tests for the functional simulator and the fault injector."""

import pytest

from repro.assembler import ProgramBuilder, parse_assembly
from repro.isa import F, R
from repro.sim import (
    InjectionPlan,
    Machine,
    Outcome,
    ProtectionMode,
    plan_injections,
)


def run_builder(body, **run_kwargs):
    builder = ProgramBuilder()
    with builder.function("main"):
        body(builder)
        builder.halt()
    program = builder.build()
    machine = Machine(program)
    return machine, machine.run(**run_kwargs)


class TestArithmetic:
    def test_add_and_li(self):
        def body(b):
            b.li(R(8), 20)
            b.li(R(9), 22)
            b.add(R(2), R(8), R(9))
        _, result = run_builder(body)
        assert result.outcome == Outcome.COMPLETED
        assert result.exit_value == 42

    def test_signed_wraparound(self):
        def body(b):
            b.li(R(8), 2**31 - 1)
            b.addi(R(2), R(8), 1)
        _, result = run_builder(body)
        assert result.exit_value == -(2**31)

    def test_division_truncates_toward_zero(self):
        def body(b):
            b.li(R(8), -7)
            b.li(R(9), 2)
            b.div(R(2), R(8), R(9))
        _, result = run_builder(body)
        assert result.exit_value == -3

    def test_division_by_zero_crashes(self):
        def body(b):
            b.li(R(8), 1)
            b.li(R(9), 0)
            b.div(R(2), R(8), R(9))
        _, result = run_builder(body)
        assert result.outcome == Outcome.CRASH
        assert result.fault_kind == "arithmetic"

    def test_shift_amount_is_masked(self):
        def body(b):
            b.li(R(8), 1)
            b.li(R(9), 33)   # hardware masks to 1
            b.sll(R(2), R(8), R(9))
        _, result = run_builder(body)
        assert result.exit_value == 2

    def test_float_pipeline(self):
        def body(b):
            b.fli(F(1), 2.25)
            b.fli(F(2), 4.0)
            b.fmul(F(3), F(1), F(2))
            b.cvtfi(R(2), F(3))
        _, result = run_builder(body)
        assert result.exit_value == 9

    def test_float_division_by_zero_gives_infinity(self):
        def body(b):
            b.fli(F(1), 1.0)
            b.fli(F(2), 0.0)
            b.fdiv(F(3), F(1), F(2))
            b.fout(F(3))
        _, result = run_builder(body)
        assert result.outcome == Outcome.COMPLETED
        assert result.output(0)[0] == float("inf")


class TestMemoryAndControl:
    def test_store_load_roundtrip(self):
        def body(b):
            b.data("scratch", 8)
            b.la(R(8), "scratch")
            b.li(R(9), 77)
            b.sw(R(9), R(8), 3)
            b.lw(R(2), R(8), 3)
        _, result = run_builder(body)
        assert result.exit_value == 77

    def test_loop_sums_integers(self):
        def body(b):
            b.li(R(8), 0)    # sum
            b.li(R(9), 1)    # i
            b.li(R(10), 10)  # n
            b.label("loop")
            b.add(R(8), R(8), R(9))
            b.addi(R(9), R(9), 1)
            b.ble(R(9), R(10), "loop")
            b.mov(R(2), R(8))
        _, result = run_builder(body)
        assert result.exit_value == 55

    def test_call_and_return(self):
        builder = ProgramBuilder()
        with builder.function("main"):
            builder.li(R(4), 5)
            builder.jal("double")
            builder.halt()
        with builder.function("double"):
            builder.add(R(2), R(4), R(4))
            builder.ret()
        machine = Machine(builder.build())
        result = machine.run()
        assert result.exit_value == 10

    def test_jump_to_garbage_crashes(self):
        def body(b):
            b.li(R(8), 123456)
            b.jr(R(8))
        _, result = run_builder(body)
        assert result.outcome == Outcome.CRASH
        assert result.fault_kind == "control"

    def test_watchdog_detects_infinite_loop(self):
        def body(b):
            b.label("spin")
            b.j("spin")
        _, result = run_builder(body, max_instructions=500)
        assert result.outcome == Outcome.HANG
        assert result.executed == 500

    def test_wild_address_is_silently_mapped(self):
        # A corrupted-but-positive address must not crash (SimpleScalar-like
        # lazily mapped memory); it just reads zero.
        def body(b):
            b.li(R(8), 2**30 + 12345)
            b.lw(R(2), R(8), 0)
        _, result = run_builder(body)
        assert result.outcome == Outcome.COMPLETED
        assert result.exit_value == 0

    def test_out_channels(self):
        def body(b):
            b.li(R(8), 7)
            b.out(R(8), 0)
            b.out(R(8), 3)
        _, result = run_builder(body)
        assert result.output(0) == [7]
        assert result.output(3) == [7]

    def test_statistics_classify_instructions(self):
        def body(b):
            b.li(R(8), 1)
            b.li(R(9), 5)
            b.label("loop")
            b.addi(R(8), R(8), 1)
            b.blt(R(8), R(9), "loop")
        _, result = run_builder(body)
        stats = result.statistics
        assert stats.total == result.executed
        assert stats.branch > 0
        assert stats.arithmetic > 0


class TestAssemblyParser:
    SOURCE = """
    .data table 4 = 5 6 7 8
    .func main
        la   $8, table
        lw   $9, $8, 2
        addi $2, $9, 100
        halt
    .endfunc
    """

    def test_parse_and_run(self):
        program = parse_assembly(self.SOURCE)
        result = Machine(program).run()
        assert result.exit_value == 107

    def test_functions_are_recorded(self):
        program = parse_assembly(self.SOURCE)
        assert "main" in program.functions


class TestInjection:
    def _program(self):
        builder = ProgramBuilder()
        with builder.function("main"):
            builder.data("out_buffer", 64)
            builder.la(R(10), "out_buffer")
            builder.li(R(8), 0)      # i
            builder.li(R(9), 32)     # n
            builder.label("loop")
            builder.mul(R(11), R(8), R(8)).low_reliability = True
            builder.add(R(12), R(10), R(8))
            builder.sw(R(11), R(12), 0)
            builder.addi(R(8), R(8), 1)
            builder.blt(R(8), R(9), "loop")
            builder.halt()
        return builder.build()

    def test_plan_targets_are_unique_and_sorted(self):
        plan = plan_injections(10, 1000, ProtectionMode.PROTECTED, seed=1)
        assert plan.targets == sorted(set(plan.targets))
        assert len(plan.targets) == 10

    def test_plan_is_deterministic_per_seed(self):
        a = plan_injections(5, 500, ProtectionMode.PROTECTED, seed=9)
        b = plan_injections(5, 500, ProtectionMode.PROTECTED, seed=9)
        assert a.targets == b.targets

    def test_plan_rejects_invalid_targets(self):
        with pytest.raises(ValueError):
            InjectionPlan(mode=ProtectionMode.PROTECTED, targets=[3, 3])
        with pytest.raises(ValueError):
            InjectionPlan(mode=ProtectionMode.PROTECTED, targets=[-1])

    def test_protected_injection_only_hits_tagged_instructions(self):
        program = self._program()
        golden = Machine(program).run()
        exposed = golden.statistics.exposed_protected
        assert exposed == 32  # one tagged MUL per loop iteration
        plan = plan_injections(4, exposed, ProtectionMode.PROTECTED, seed=3)
        result = Machine(program).run(injection=plan)
        assert result.outcome == Outcome.COMPLETED
        assert plan.injected_errors == 4
        assert all(event.opcode == "MUL" for event in plan.events)

    def test_injection_corrupts_results(self):
        program = self._program()
        golden_machine = Machine(program)
        golden = golden_machine.run()
        golden_values = golden_machine.read_global("out_buffer", 32)

        plan = plan_injections(3, golden.statistics.exposed_protected,
                               ProtectionMode.PROTECTED, seed=11)
        injected_machine = Machine(program)
        injected = injected_machine.run(injection=plan)
        corrupted_values = injected_machine.read_global("out_buffer", 32)
        assert injected.outcome == Outcome.COMPLETED
        assert corrupted_values != golden_values

    def test_zero_errors_is_identical_to_golden(self):
        program = self._program()
        golden_machine = Machine(program)
        golden_machine.run()
        plan = plan_injections(0, 100, ProtectionMode.PROTECTED, seed=1)
        machine = Machine(program)
        machine.run(injection=plan)
        assert machine.read_global("out_buffer", 32) == \
            golden_machine.read_global("out_buffer", 32)
