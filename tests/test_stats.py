"""Unit and property tests of the statistical confidence subsystem.

The quantile functions are checked against textbook table values (no
scipy in the environment, so the implementations in
``repro.core.stats`` are from-scratch); the Wilson interval against a
hand-computed reference; and the interval properties the adaptive sweep
relies on — bounds, point-estimate containment, monotone shrinkage —
with hypothesis.
"""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import CampaignResult, RunRecord, StoppingRule
from repro.core.fidelity import FidelityResult
from repro.core.stats import (
    ConfidenceInterval,
    average_ranks,
    normal_quantile,
    spearman_rho,
    student_t_quantile,
    t_interval,
    wilson_interval,
)
from repro.sim import Outcome, ProtectionMode


def make_record(run_index=0, outcome=Outcome.COMPLETED, score=1.0,
                acceptable=True, detail=None):
    """A hand-built RunRecord for aggregation tests (no simulation)."""
    fidelity = None
    if outcome == Outcome.COMPLETED:
        fidelity = FidelityResult(score=score, acceptable=acceptable,
                                  perfect=score == 1.0,
                                  detail=detail or {})
    return RunRecord(
        run_index=run_index, seed=run_index, mode=ProtectionMode.PROTECTED,
        errors_requested=1, errors_injected=1, outcome=outcome,
        executed=100, fidelity=fidelity,
    )


def make_cell(*records):
    cell = CampaignResult(app_name="test", mode=ProtectionMode.PROTECTED,
                          errors_requested=1)
    cell.records.extend(records)
    return cell


class TestNormalQuantile:
    # Reference values from standard normal tables.
    @pytest.mark.parametrize("p, z", [
        (0.975, 1.959963984540054),
        (0.995, 2.5758293035489004),
        (0.9, 1.2815515655446004),
        (0.5, 0.0),
        (0.025, -1.959963984540054),
        (0.001, -3.090232306167813),
    ])
    def test_table_values(self, p, z):
        assert normal_quantile(p) == pytest.approx(z, abs=1e-12)

    def test_rejects_degenerate_probabilities(self):
        for p in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="normal_quantile"):
                normal_quantile(p)


class TestStudentTQuantile:
    # Reference values from standard t tables (two-sided 95% unless noted).
    @pytest.mark.parametrize("p, df, t", [
        (0.975, 1, 12.706204736432095),
        (0.975, 4, 2.7764451051977987),
        (0.975, 9, 2.2621571627409915),
        (0.975, 29, 2.045229642132703),
        (0.95, 1, 6.313751514675043),
        (0.95, 10, 1.8124611228107335),
        (0.995, 9, 3.2498355415921548),
    ])
    def test_table_values(self, p, df, t):
        assert student_t_quantile(p, df) == pytest.approx(t, rel=1e-9)

    def test_symmetry_and_median(self):
        assert student_t_quantile(0.5, 7) == 0.0
        assert student_t_quantile(0.025, 9) == pytest.approx(
            -student_t_quantile(0.975, 9), rel=1e-12)

    def test_approaches_the_normal_quantile_for_large_df(self):
        assert student_t_quantile(0.975, 100000) == pytest.approx(
            normal_quantile(0.975), abs=1e-4)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="df >= 1"):
            student_t_quantile(0.975, 0)
        with pytest.raises(ValueError, match="0 < p < 1"):
            student_t_quantile(1.0, 5)


class TestWilsonInterval:
    def test_hand_computed_reference(self):
        # 3 successes in 10 runs at 95%: the worked example of the Wilson
        # interval (z = 1.9599640): center = (0.3 + z^2/20) / (1 + z^2/10),
        # margin = z * sqrt(0.3*0.7/10 + z^2/400) / (1 + z^2/10)
        # => (0.10779, 0.60322).
        interval = wilson_interval(3, 10)
        assert interval.point == pytest.approx(30.0)
        assert interval.low == pytest.approx(10.779126740630108, rel=1e-9)
        assert interval.high == pytest.approx(60.322185253885465, rel=1e-9)
        assert interval.confidence == 0.95

    def test_zero_and_full_counts_stay_in_bounds(self):
        zero = wilson_interval(0, 12)
        full = wilson_interval(12, 12)
        assert zero.point == 0.0 and zero.low == 0.0 and zero.high > 0.0
        assert full.point == 100.0 and full.high == 100.0 and full.low < 100.0
        # The two are mirror images.
        assert zero.high == pytest.approx(100.0 - full.low, rel=1e-12)

    def test_half_width_and_str(self):
        interval = ConfidenceInterval(point=50.0, low=40.0, high=60.0)
        assert interval.half_width == 10.0
        assert str(interval) == "50.00 ±10.00"
        assert json.dumps(interval.as_json())  # JSON-safe

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="total >= 1"):
            wilson_interval(0, 0)
        with pytest.raises(ValueError, match="successes"):
            wilson_interval(5, 4)
        with pytest.raises(ValueError, match="confidence"):
            wilson_interval(1, 4, confidence=1.0)


class TestWilsonProperties:
    counts = st.integers(min_value=1, max_value=500).flatmap(
        lambda n: st.tuples(st.integers(min_value=0, max_value=n), st.just(n)))

    @given(counts)
    def test_bounds_and_containment(self, count_total):
        successes, total = count_total
        interval = wilson_interval(successes, total)
        assert 0.0 <= interval.low <= interval.high <= 100.0
        # The interval always contains the point estimate.
        assert interval.low <= interval.point <= interval.high

    @given(counts)
    def test_half_width_shrinks_monotonically_with_n(self, count_total):
        successes, total = count_total
        small = wilson_interval(successes, total)
        large = wilson_interval(2 * successes, 2 * total)
        assert large.point == pytest.approx(small.point)
        assert large.half_width < small.half_width

    @given(counts)
    def test_higher_confidence_widens(self, count_total):
        successes, total = count_total
        assert (wilson_interval(successes, total, confidence=0.99).half_width
                > wilson_interval(successes, total,
                                  confidence=0.90).half_width)


class TestTInterval:
    def test_hand_computed_reference(self):
        # mean 2.5, sample stdev sqrt(5/3), se = sqrt(5/3)/2 = 0.6454972,
        # t(0.975, df=3) = 3.1824463 => margin 3.1824463 * 0.6454972.
        interval = t_interval([1.0, 2.0, 3.0, 4.0])
        assert interval.point == pytest.approx(2.5)
        assert interval.half_width == pytest.approx(2.0542602567605186,
                                                    rel=1e-9)

    def test_fewer_than_two_values_has_no_interval(self):
        assert t_interval([]) is None
        assert t_interval([7.5]) is None

    def test_constant_values_give_zero_width(self):
        interval = t_interval([3.0, 3.0, 3.0])
        assert interval.point == 3.0
        assert interval.half_width == 0.0

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError, match="confidence"):
            t_interval([1.0, 2.0], confidence=0.0)


class TestStoppingRule:
    def test_validation(self):
        with pytest.raises(ValueError, match="ci_width"):
            StoppingRule(ci_width=0.0)
        with pytest.raises(ValueError, match="floor"):
            StoppingRule(floor=0)
        with pytest.raises(ValueError, match="cap"):
            StoppingRule(floor=10, cap=5)
        with pytest.raises(ValueError, match="confidence"):
            StoppingRule(confidence=1.0)

    def test_floor_blocks_early_stops(self):
        # 0/2 has a tight-looking interval but the floor holds it open.
        rule = StoppingRule(ci_width=80.0, floor=4, cap=8)
        assert not rule.satisfied(2, 0, 2)
        assert rule.satisfied(4, 0, 4)

    def test_cap_stops_unconverged_cells(self):
        rule = StoppingRule(ci_width=0.001, floor=2, cap=6)
        assert not rule.satisfied(5, 2, 3)   # hopelessly wide
        assert rule.satisfied(6, 3, 3)       # but the cap ends it

    def test_both_rates_must_converge(self):
        rule = StoppingRule(ci_width=14.0, floor=4, cap=100)
        # failures 0/16 is narrow (±~11pp), acceptable 8/16 is wide (±~22pp).
        assert not rule.satisfied(16, 0, 8)
        assert rule.satisfied(16, 0, 16)

    def test_satisfied_by_campaign_result(self):
        rule = StoppingRule(ci_width=30.0, floor=2, cap=100)
        cell = make_cell(make_record(0), make_record(1),
                         make_record(2), make_record(3))
        assert rule.satisfied_by(cell)

    def test_meta_round_trip(self):
        rule = StoppingRule(ci_width=1.5, floor=12, cap=200, confidence=0.9)
        assert StoppingRule.from_meta(rule.as_meta()) == rule


class TestAggregationEdgeCases:
    """Empty and single-run campaign cells (ISSUE 5 satellite)."""

    def test_empty_cell_rates_and_means(self):
        cell = make_cell()
        assert cell.total_runs == 0
        assert cell.failure_percent == 0.0
        assert cell.acceptable_percent == 0.0
        assert cell.mean_fidelity is None
        assert cell.min_fidelity is None
        assert cell.mean_injected_errors == 0.0
        assert cell.detail_mean("anything") is None
        assert cell.failure_ci() is None
        assert cell.acceptable_ci() is None
        assert cell.mean_fidelity_ci() is None

    def test_empty_cell_summary_is_strict_json(self):
        summary = make_cell().summary()
        assert summary["mean_fidelity"] is None
        assert summary["failures_pct_moe"] is None
        # allow_nan=False is strict JSON: float("nan") would raise here,
        # and its old serialisation ("NaN") is rejected by strict parsers.
        text = json.dumps(summary, allow_nan=False)
        assert json.loads(text)["runs"] == 0.0

    def test_crash_only_cell_summary_is_strict_json(self):
        cell = make_cell(make_record(0, outcome=Outcome.CRASH),
                         make_record(1, outcome=Outcome.HANG))
        summary = cell.summary()
        assert summary["failures_pct"] == 100.0
        assert summary["mean_fidelity"] is None  # no completed runs
        json.dumps(summary, allow_nan=False)

    def test_single_run_cell(self):
        cell = make_cell(make_record(0, score=0.75, acceptable=True))
        assert cell.failure_percent == 0.0
        assert cell.mean_fidelity == 0.75
        interval = cell.failure_ci()
        assert interval is not None and interval.point == 0.0
        assert 0.0 <= interval.low <= interval.high <= 100.0
        # One sample: rate CIs exist, the mean-fidelity t interval cannot.
        assert cell.mean_fidelity_ci() is None
        json.dumps(cell.summary(), allow_nan=False)

    def test_detail_mean_tolerates_missing_keys(self):
        cell = make_cell(
            make_record(0, detail={"snr": 10.0}),
            make_record(1, detail={}),                 # key absent
            make_record(2, outcome=Outcome.CRASH),     # no fidelity at all
            make_record(3, detail={"snr": 20.0}),
        )
        assert cell.detail_mean("snr") == 15.0
        assert cell.detail_mean("absent") is None

    def test_cell_ci_matches_stats_layer(self):
        cell = make_cell(
            make_record(0, outcome=Outcome.CRASH),
            make_record(1, outcome=Outcome.CRASH),
            make_record(2, outcome=Outcome.CRASH),
            *[make_record(index) for index in range(3, 10)],
        )
        assert cell.failure_percent == 30.0
        assert cell.failure_ci() == wilson_interval(3, 10)
        assert cell.acceptable_ci() == wilson_interval(7, 10)


class TestAverageRanks:
    def test_distinct_values(self):
        assert average_ranks([30.0, 10.0, 20.0]) == [3.0, 1.0, 2.0]

    def test_ties_get_mid_ranks(self):
        assert average_ranks([1.0, 1.0, 2.0]) == [1.5, 1.5, 3.0]
        assert average_ranks([5.0, 5.0, 5.0]) == [2.0, 2.0, 2.0]

    def test_empty(self):
        assert average_ranks([]) == []


class TestSpearmanRho:
    def test_perfect_agreement(self):
        assert spearman_rho([1, 2, 3, 4], [10, 20, 30, 40]) == 1.0

    def test_perfect_reversal(self):
        assert spearman_rho([1, 2, 3, 4], [40, 30, 20, 10]) == -1.0

    def test_textbook_value(self):
        # Ranks (1..5) vs (1,3,2,5,4): d^2 sum = 4, rho = 1 - 24/120 = 0.8.
        assert spearman_rho([1, 2, 3, 4, 5],
                            [1, 3, 2, 5, 4]) == pytest.approx(0.8)

    def test_monotone_transform_invariance(self):
        xs = [0.5, 1.5, 7.0, 9.0]
        assert spearman_rho(xs, [x ** 3 for x in xs]) == 1.0

    def test_degenerate_inputs_are_none(self):
        assert spearman_rho([], []) is None
        assert spearman_rho([1.0], [2.0]) is None
        assert spearman_rho([3.0, 3.0, 3.0], [1.0, 2.0, 3.0]) is None

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length"):
            spearman_rho([1.0, 2.0], [1.0])

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2,
                    max_size=20))
    def test_self_correlation_is_one_or_none(self, values):
        rho = spearman_rho(values, values)
        assert rho is None or rho == pytest.approx(1.0)

    @given(st.lists(st.tuples(st.floats(min_value=-1e6, max_value=1e6),
                              st.floats(min_value=-1e6, max_value=1e6)),
                    min_size=2, max_size=20))
    def test_bounded_and_symmetric(self, pairs):
        xs = [pair[0] for pair in pairs]
        ys = [pair[1] for pair in pairs]
        rho = spearman_rho(xs, ys)
        if rho is not None:
            assert -1.0 - 1e-9 <= rho <= 1.0 + 1e-9
            assert spearman_rho(ys, xs) == pytest.approx(rho)
