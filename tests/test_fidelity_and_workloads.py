"""Tests for the fidelity measures and the synthetic workload generators."""

import math

import pytest

from repro.fidelity import (
    DEPOT,
    classify_frames,
    compare_recognition,
    compare_schedules,
    is_complete,
    mean_squared_error,
    percent_bad_frames,
    percent_matching,
    percent_within_tolerance,
    psnr,
    schedule_cost,
    signal_to_noise_db,
    snr_loss_db,
)
from repro.fidelity.confidence import RecognitionResult
from repro.workloads import (
    INFEASIBLE,
    ascii_text,
    bytes_to_words,
    key_bytes,
    moving_scene,
    speech_like_signal,
    synthetic_scene,
    text_to_bytes,
    thermal_image_with_objects,
    transit_instance,
    words_to_bytes,
)


class TestPsnrAndSnr:
    def test_identical_images_have_max_psnr(self):
        image = [10, 20, 30, 255]
        assert psnr(image, image) == 100.0

    def test_psnr_decreases_with_noise(self):
        reference = [100] * 64
        slightly_off = [101] * 64
        very_off = [200] * 64
        assert psnr(reference, slightly_off) > psnr(reference, very_off)

    def test_mse_mismatched_sizes_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error([1, 2], [1])

    def test_snr_of_identical_signals(self):
        signal = [100, -50, 25, 3]
        assert signal_to_noise_db(signal, signal) == 100.0
        assert snr_loss_db(signal, signal) == 0.0

    def test_snr_known_value(self):
        reference = [10.0, 10.0, 10.0, 10.0]
        observed = [11.0, 9.0, 11.0, 9.0]
        expected = 10.0 * math.log10(400.0 / 4.0)
        assert abs(signal_to_noise_db(reference, observed) - expected) < 1e-9

    def test_psnr_of_all_zero_images(self):
        """Zero-error on an all-zero image is still a perfect reproduction."""
        zeros = [0, 0, 0, 0]
        assert psnr(zeros, zeros) == 100.0
        # Any deviation from an all-zero reference yields a finite PSNR.
        assert 0.0 < psnr(zeros, [0, 0, 0, 8]) < 100.0

    def test_psnr_of_empty_images_rejected(self):
        with pytest.raises(ValueError):
            psnr([], [])

    def test_snr_of_silent_reference_is_degenerate(self):
        """An all-zero reference has no signal energy: SNR pins to 0 dB,
        for the identical and the corrupted observation alike."""
        silence = [0.0, 0.0, 0.0]
        assert signal_to_noise_db(silence, silence) == 0.0
        assert signal_to_noise_db(silence, [1.0, 0.0, 0.0]) == 0.0
        assert snr_loss_db(silence, silence) == 100.0

    def test_snr_is_clamped_for_overwhelming_noise(self):
        reference = [1e-6, 1e-6]
        observed = [1e6, -1e6]
        assert signal_to_noise_db(reference, observed) == -100.0

    def test_snr_of_empty_signals_rejected(self):
        with pytest.raises(ValueError):
            signal_to_noise_db([], [])

    def test_snr_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            signal_to_noise_db([1.0, 2.0], [1.0])


class TestByteAndFrameMeasures:
    def test_percent_matching(self):
        assert percent_matching([1, 2, 3, 4], [1, 2, 0, 4]) == 75.0
        assert percent_matching([], []) == 100.0
        assert percent_matching([1, 2], [1, 2, 3, 4]) == 50.0

    def test_percent_within_tolerance(self):
        assert percent_within_tolerance([10, 20], [11, 28], tolerance=2) == 50.0

    def test_percent_matching_length_mismatch(self):
        """A corrupted run can emit too little or too much output; the
        missing/extra positions count as mismatches against the longer
        length, so truncation is penalized rather than ignored."""
        # Truncated output: 2 of 4 positions match.
        assert percent_matching([1, 2, 3, 4], [1, 2]) == 50.0
        # Overlong output: extra positions dilute the score symmetrically.
        assert percent_matching([1, 2], [1, 2, 9, 9, 9, 9]) == pytest.approx(100.0 / 3.0)
        # Entirely missing output matches nothing.
        assert percent_matching([1, 2, 3], []) == 0.0
        assert percent_matching([], [7]) == 0.0

    def test_percent_within_tolerance_length_mismatch_and_empty(self):
        assert percent_within_tolerance([10, 20, 30], [10], tolerance=1) == pytest.approx(100.0 / 3.0)
        assert percent_within_tolerance([], [], tolerance=1) == 100.0

    def test_frame_classification_uses_type_budgets(self):
        reference = [[100] * 16, [100] * 16, [100] * 16]
        observed_clean = [list(frame) for frame in reference]
        qualities = classify_frames(reference, observed_clean, ["I", "P", "B"])
        assert percent_bad_frames(qualities) == 0.0

        observed_noisy = [[100] * 16, [100] * 16, [60] * 16]
        qualities = classify_frames(reference, observed_noisy, ["I", "P", "B"])
        assert qualities[2].bad and not qualities[0].bad
        assert percent_bad_frames(qualities) == pytest.approx(100.0 / 3.0)


class TestScheduleMeasure:
    COSTS = [
        [INFEASIBLE, 50.0, INFEASIBLE],
        [INFEASIBLE, INFEASIBLE, 30.0],
        [INFEASIBLE, INFEASIBLE, INFEASIBLE],
    ]

    def test_complete_schedule(self):
        assert is_complete([1, 2, DEPOT], 3)
        assert not is_complete([1, 1, DEPOT], 3)      # duplicated successor
        assert not is_complete([5, DEPOT, DEPOT], 3)  # out of range

    def test_schedule_cost_counts_vehicles_once(self):
        cost = schedule_cost([1, 2, DEPOT], self.COSTS, pull_cost=100.0)
        assert cost == 50.0 + 30.0 + 100.0

    def test_compare_schedules_optimal(self):
        optimal = schedule_cost([1, 2, DEPOT], self.COSTS, pull_cost=100.0)
        comparison = compare_schedules([1, 2, DEPOT], optimal, self.COSTS,
                                       pull_cost=100.0, infeasible_marker=INFEASIBLE)
        assert comparison.optimal and comparison.complete
        worse = compare_schedules([DEPOT, DEPOT, DEPOT], optimal, self.COSTS,
                                  pull_cost=100.0, infeasible_marker=INFEASIBLE)
        assert not worse.optimal and worse.extra_cost_percent > 0


class TestRecognitionMeasure:
    def test_recognised_within_tolerance(self):
        reference = RecognitionResult(best_window=4, best_class=1, confidence=0.8)
        observed = RecognitionResult(best_window=4, best_class=1, confidence=0.75)
        assert compare_recognition(reference, observed).recognized

    def test_wrong_location_is_not_recognised(self):
        reference = RecognitionResult(best_window=4, best_class=1, confidence=0.8)
        observed = RecognitionResult(best_window=5, best_class=1, confidence=0.8)
        comparison = compare_recognition(reference, observed)
        assert not comparison.recognized and not comparison.location_correct


class TestWorkloads:
    def test_synthetic_scene_is_deterministic(self):
        assert synthetic_scene(16, 16, seed=3).pixels == synthetic_scene(16, 16, seed=3).pixels
        assert synthetic_scene(16, 16, seed=3).pixels != synthetic_scene(16, 16, seed=4).pixels

    def test_scene_pixels_in_range(self):
        image = synthetic_scene(20, 12, seed=1)
        assert len(image.pixels) == 240
        assert all(0 <= value <= 255 for value in image.pixels)

    def test_moving_scene_frames_differ(self):
        frames = moving_scene(16, 16, 4, seed=0)
        assert len(frames) == 4
        assert frames[0].pixels != frames[1].pixels

    def test_speech_signal_is_16bit(self):
        signal = speech_like_signal(500, seed=7)
        assert len(signal) == 500
        assert all(-32768 <= sample <= 32767 for sample in signal)
        assert max(abs(sample) for sample in signal) > 1000

    def test_text_and_word_packing_roundtrip(self):
        text = ascii_text(100, seed=5)
        data = text_to_bytes(text)
        words = bytes_to_words(data)
        assert words_to_bytes(words, len(data)) == data
        assert all(-(2**31) <= word < 2**31 for word in words)

    def test_key_bytes_bounds(self):
        key = key_bytes(16, seed=1)
        assert len(key) == 16 and all(0 <= byte <= 255 for byte in key)
        with pytest.raises(ValueError):
            key_bytes(2)

    def test_thermal_image_places_objects(self):
        image, placements = thermal_image_with_objects(24, 24, 8, object_count=2, seed=2)
        assert len(placements) == 2
        classes = {placement[0] for placement in placements}
        assert classes == {0, 1}
        # Hot pixels exist where the objects were placed.
        _, x, y = placements[0]
        assert image.at(x + 1, y) > 150 or image.at(x, y) > 150

    def test_transit_instance_optimal_cost_is_consistent(self):
        instance = transit_instance(8, seed=3)
        optimal_cost = instance.optimal_cost()
        successors = instance.optimal_successors()
        rebuilt = schedule_cost(successors, instance.cost_matrix(), instance.pull_cost)
        assert rebuilt == pytest.approx(optimal_cost)
        assert is_complete(successors, instance.trip_count)
