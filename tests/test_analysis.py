"""Tests for the static susceptibility oracle (:mod:`repro.analysis`).

The load-bearing assertion is the tentpole equivalence: the def-use
facts must reproduce the control-tagging pass's decisions *exactly* on
every benchmark app under every option combination.  On top of that:
fate classification on a hand-built program, report determinism and
round-tripping, golden-stream attribution against the engine's own
injection events, and the table-5 validation loop against a real store.
"""

import json

import pytest

from repro.analysis import (
    FATE_CONTROL,
    FATE_DATA,
    FATE_DEAD,
    FATE_MASKED,
    SiteTally,
    StaticSusceptibilityReport,
    attribute_first_flips,
    build_report,
    exposed_site_stream,
)
from repro.apps import APP_ORDER, small_suite
from repro.assembler import ProgramBuilder
from repro.compiler.passes import ControlTaggingPass, compute_def_use
from repro.core.campaign import CampaignConfig
from repro.exec.base import make_record
from repro.isa import R
from repro.sim import ProtectionMode, plan_injections

OPTION_COMBOS = (
    {},
    {"protect_addresses": True},
    {"protect_addresses": True, "track_memory": True},
    {"track_memory": True},
)


class TestTaggingEquivalence:
    """The acceptance criterion: def-use facts == tagging pass, exactly."""

    @pytest.mark.parametrize("name", APP_ORDER)
    def test_all_apps_all_option_combos(self, name):
        program = small_suite()[name].program()
        try:
            for options in OPTION_COMBOS:
                report = ControlTaggingPass(**options).run(program)
                facts = compute_def_use(program, **options)
                assert facts.tagged_sites() == frozenset(
                    report.tagged_indices), options
        finally:
            # program() memoizes; later tests expect the canonical tags.
            ControlTaggingPass().run(program)


def _fate_program():
    """One site per fate class, by construction.

    $8/$9 feed the branch (control); $10 is stored, $11 addresses the
    store (both data under default options); $12 only feeds $13, which
    nothing ever reads (masked feeding dead).
    """
    builder = ProgramBuilder()
    with builder.function("main"):
        builder.data("sink", 8)
        builder.li(R(8), 5)
        builder.addi(R(9), R(8), 1)
        builder.li(R(10), 3)
        builder.la(R(11), "sink")
        builder.sw(R(10), R(11), 0)
        builder.li(R(12), 9)
        builder.add(R(13), R(12), R(12))
        builder.bnez(R(9), "end")
        builder.nop()
        builder.label("end")
        builder.halt()
    return builder.build()


class TestFateClassification:
    def test_hand_built_fates(self):
        program = _fate_program()
        report = build_report_for_program(program)
        fates = {site.dest: site.fate for site in report}
        assert fates["$8"] == FATE_CONTROL      # feeds $9 feeds branch
        assert fates["$9"] == FATE_CONTROL      # branch operand
        assert fates["$10"] == FATE_DATA        # stored value
        assert fates["$11"] == FATE_DATA        # store address
        assert fates["$12"] == FATE_MASKED      # only feeds dead $13
        assert fates["$13"] == FATE_DEAD        # never read

    def test_protect_addresses_reclassifies_address_chain(self):
        program = _fate_program()
        report = build_report_for_program(program, protect_addresses=True)
        fates = {site.dest: site.fate for site in report}
        assert fates["$11"] == FATE_CONTROL

    def test_risk_ordering_follows_fates(self):
        program = _fate_program()
        sites = {site.dest: site for site in build_report_for_program(program)}
        assert sites["$9"].risk > sites["$10"].risk > sites["$12"].risk
        assert sites["$13"].risk == 0.0


def build_report_for_program(program, **options):
    """Score a raw program (no app/registry) for the fate tests."""
    from repro.compiler.passes import compute_loop_nesting
    from repro.analysis import score_sites

    defuse = compute_def_use(program, **options)
    return score_sites(program, defuse, compute_loop_nesting(program))


class TestReportCodec:
    def test_byte_identical_across_builds(self):
        first = json.dumps(build_report("susan").to_json(), sort_keys=True)
        second = json.dumps(build_report("susan").to_json(), sort_keys=True)
        assert first == second

    def test_round_trip(self):
        report = build_report("adpcm")
        rebuilt = StaticSusceptibilityReport.from_json(
            json.loads(json.dumps(report.to_json())))
        assert rebuilt == report

    def test_version_mismatch_is_an_error(self):
        payload = build_report("adpcm").to_json()
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema"):
            StaticSusceptibilityReport.from_json(payload)

    def test_rollups_are_consistent(self):
        report = build_report("susan")
        fates = report.fate_counts()
        assert sum(fates.values()) == len(report.sites)
        assert report.tagged_count() == sum(
            1 for site in report.sites if site.tagged)
        ranked = report.ranked()
        assert sorted(ranked, key=lambda site: site.index) == sorted(
            report.sites, key=lambda site: site.index)
        assert all(ranked[i].score >= ranked[i + 1].score
                   for i in range(len(ranked) - 1))

    def test_tagged_sites_match_the_app_tags(self):
        # The report's `tagged` flags are the pass's decisions (tentpole
        # equivalence), so they must agree with the app's canonical tags.
        report = build_report("susan")
        program = small_suite()["susan"].program()
        tagged = {site.index for site in report.sites if site.tagged}
        assert tagged == set(program.tagged_indices())

    def test_state_kind_model_is_rejected(self):
        with pytest.raises(ValueError, match="state"):
            build_report("susan", model="memory-bit")

    def test_unknown_app_and_suite_are_errors(self):
        with pytest.raises(ValueError, match="unknown app"):
            build_report("nonesuch")
        with pytest.raises(ValueError, match="unknown suite"):
            build_report("susan", suite="giant")


class TestAttribution:
    def test_stream_length_matches_exposed_counts(self):
        app = small_suite()["adpcm"]
        golden = app.golden(0)
        for mode in (ProtectionMode.PROTECTED, ProtectionMode.UNPROTECTED):
            stream = exposed_site_stream(app, mode)
            assert len(stream) == golden.exposed_count(mode)

    def test_stream_sites_are_mode_exposed(self):
        app = small_suite()["adpcm"]
        program = app.program()
        stream = exposed_site_stream(app, ProtectionMode.PROTECTED)
        assert set(stream) <= set(program.tagged_indices())

    def test_state_kind_model_is_rejected(self):
        with pytest.raises(ValueError, match="state"):
            exposed_site_stream(small_suite()["adpcm"],
                                ProtectionMode.UNPROTECTED,
                                model="memory-bit")

    def test_first_flip_attribution_matches_engine_events(self):
        """Attributed sites == the static_index the engine records when
        the plan actually fires."""
        app = small_suite()["adpcm"]
        config = CampaignConfig(base_seed=1234)
        mode = ProtectionMode.UNPROTECTED
        records = []
        engine_sites = []
        for run_index in range(8):
            seed = config.workload_seed_for(run_index)
            population = app.golden(seed).exposed_count(mode)
            plan = plan_injections(
                1, population, mode,
                seed=config.seed_for(run_index) + 104729 * 1)
            app.run_once(injection=plan, seed=seed)
            assert plan.events, "single-error plan must fire in-run"
            engine_sites.append(plan.events[0].static_index)
            records.append(make_record(app, config, run_index, 1, mode))

        tallies, skipped = attribute_first_flips(
            app, records, mode, config.base_seed)
        assert skipped == 0
        assert sum(tally.hits for tally in tallies.values()) == 8
        stream = exposed_site_stream(app, mode)
        attributed = []
        for record in records:
            plan = plan_injections(
                1, len(stream), mode,
                seed=config.base_seed + 7919 * record.run_index + 104729)
            attributed.append(stream[plan.targets[0]])
        assert attributed == engine_sites

    def test_unattributable_records_are_skipped(self):
        app = small_suite()["adpcm"]
        config = CampaignConfig(base_seed=1234)
        multi = make_record(app, config, 0, 2, ProtectionMode.UNPROTECTED)
        clean = make_record(app, config, 1, 0, ProtectionMode.UNPROTECTED)
        tallies, skipped = attribute_first_flips(
            app, [multi, clean], ProtectionMode.UNPROTECTED, config.base_seed)
        assert skipped == 2
        assert tallies == {}

    def test_tally_rates(self):
        tally = SiteTally(site=3, hits=4, failures=1, degraded=2)
        assert tally.impacts == 3
        assert tally.failure_rate == 0.25
        assert tally.impact_rate == 0.75
        assert SiteTally(site=0).impact_rate == 0.0


class TestTable5:
    def test_table5_from_a_real_store(self, tmp_path):
        from repro.api import CampaignSpec, submit, tables

        spec = CampaignSpec(suite="small", runs_per_cell=6, apps=("adpcm",),
                            errors=(1,), include_table2=False, base_seed=77)
        job = submit(spec, store=str(tmp_path / "store"))
        assert job["state"] == "complete"
        table = tables(str(tmp_path / "store"), [5], apps=["adpcm"])[0]
        assert table.headers[0] == "Application"
        (row,) = table.rows
        name, runs, sites_hit, failures, degraded, rho, capture = row
        assert name == "adpcm"
        assert runs == 6
        assert 1 <= sites_hit <= 6
        assert failures + degraded <= runs
        # rho/capture may be None (degenerate sample); when defined they
        # are bounded.
        assert rho is None or -1.0 <= rho <= 1.0
        assert capture is None or 0.0 <= capture <= 100.0

    def test_table5_requires_a_store(self):
        from repro.experiments.tables import table5_static_vs_dynamic

        with pytest.raises(ValueError, match="store"):
            table5_static_vs_dynamic(store=None)

    def test_table5_requires_single_error_cells(self, tmp_path):
        from repro.core import ShardStore
        from repro.experiments.tables import table5_static_vs_dynamic

        with pytest.raises(ValueError, match="errors=1"):
            table5_static_vs_dynamic(store=ShardStore(tmp_path), errors=4)
