"""Tests of the JSONL shard store and the resumable sweep orchestrator.

The headline contract (ISSUE 3 acceptance): a sweep interrupted mid-cell
and resumed on a *different* executor backend (serial -> socket) produces
a shard store byte-identical to one written by a single uninterrupted
serial sweep.
"""

import contextlib
import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.apps import create_app
from repro.core import (
    CampaignConfig,
    CampaignRunner,
    RunRecord,
    ShardStore,
    StoppingRule,
)
from repro.core.store import StoreMismatchError
from repro.experiments.sweep import SweepOrchestrator
from repro.experiments import (
    ExperimentConfig,
    figure3_mcf,
    grid_errors_axis,
    paper_grid,
    table2_catastrophic_failures,
)
from repro.sim import ProtectionMode

SRC_DIR = Path(__file__).resolve().parents[1] / "src"


@contextlib.contextmanager
def spawn_workers(count):
    """Run ``count`` TCP campaign workers; yields their addresses."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    workers = []
    try:
        for _ in range(count):
            process = subprocess.Popen(
                [sys.executable, "-m", "repro.exec.worker", "--port", "0"],
                stdout=subprocess.PIPE, text=True, env=env,
            )
            banner = process.stdout.readline().strip()
            workers.append(
                (process, re.search(r"listening on (\S+:\d+)$", banner).group(1))
            )
        yield tuple(address for _, address in workers)
    finally:
        for process, _ in workers:
            process.terminate()
            process.wait(timeout=10)

#: Small, fast grid reused by most orchestrator tests: one app, both
#: modes, three error counts, four runs per cell.
CONFIG = ExperimentConfig(suite_name="small", runs_per_cell=4, base_seed=17)
GRID = {"apps": ["adpcm"], "errors_axis": [0, 2, 6], "include_table2": False}


def store_bytes(store: ShardStore):
    """Relative path -> file bytes for every file in the store.

    ``fleet.json`` is excluded: it is operational telemetry about *how*
    a distributed sweep ran (retries, reconnects, fallbacks), explicitly
    outside the byte-identity contract the records and meta carry.
    """
    return {
        str(path.relative_to(store.root)): path.read_bytes()
        for path in sorted(store.root.rglob("*"))
        if path.is_file() and path.name != "fleet.json"
    }


def run_sweep(root, campaign=None, chunk_size=2, progress=None, **overrides):
    grid = dict(GRID, **overrides)
    orchestrator = SweepOrchestrator(
        ShardStore(root), CONFIG, campaign=campaign, chunk_size=chunk_size,
        progress=progress, **grid,
    )
    return orchestrator, orchestrator.run()


@pytest.fixture(scope="module")
def reference_store(tmp_path_factory):
    """The uninterrupted serial sweep every other store is compared against."""
    root = tmp_path_factory.mktemp("reference-store")
    _, report = run_sweep(root)
    assert report.runs_executed == 6 * 4
    return ShardStore(root)


class TestRecordSerialization:
    def test_round_trip_is_exact(self, reference_store):
        for app, mode, errors, _path in reference_store.shards():
            for record in reference_store.load_records(app, mode, errors):
                encoded = json.dumps(record.to_json(), sort_keys=True)
                decoded = RunRecord.from_json(json.loads(encoded))
                assert decoded == record
                # A second encode must give the same bytes: floats survive
                # the repr round-trip exactly.
                assert json.dumps(decoded.to_json(), sort_keys=True) == encoded

    def test_fresh_records_with_numpy_fidelity_encode(self):
        """mcf's scorer returns numpy scalars; to_json must coerce them."""
        app = create_app("mcf", trips=6)
        runner = CampaignRunner(app, CampaignConfig(runs=1, base_seed=3))
        record = runner.run_campaign(2, ProtectionMode.PROTECTED).records[0]
        line = json.dumps(record.to_json())
        assert RunRecord.from_json(json.loads(line)) == record


class TestShardStore:
    def test_missing_indices(self, tmp_path, reference_store):
        store = ShardStore(tmp_path / "s")
        mode = ProtectionMode.PROTECTED
        assert store.missing_indices("adpcm", mode, 2, 4) == [0, 1, 2, 3]
        records = reference_store.load_records("adpcm", mode, 2)
        store.append_records("adpcm", mode, 2, records[:2])
        assert store.missing_indices("adpcm", mode, 2, 4) == [2, 3]
        store.append_records("adpcm", mode, 2, records[2:])
        assert store.missing_indices("adpcm", mode, 2, 4) == []
        assert store.load_records("adpcm", mode, 2) == records

    def test_repair_truncates_partial_trailing_line(self, tmp_path,
                                                    reference_store):
        store = ShardStore(tmp_path / "s")
        mode = ProtectionMode.PROTECTED
        records = reference_store.load_records("adpcm", mode, 2)
        store.append_records("adpcm", mode, 2, records[:3])
        path = store.shard_path("adpcm", mode, 2)
        # Simulate a kill mid-write: chop the last line in half.
        data = path.read_bytes()
        path.write_bytes(data[:-20])
        assert store.present_indices("adpcm", mode, 2) == {0, 1}
        store.append_records("adpcm", mode, 2, records[2:])
        full = ShardStore(tmp_path / "full")
        full.append_records("adpcm", mode, 2, records)
        assert path.read_bytes() == full.shard_path("adpcm", mode, 2).read_bytes()

    def test_meta_mismatch_refuses_resume(self, tmp_path):
        store = ShardStore(tmp_path / "s")
        store.ensure_meta({"runs_per_cell": 4})
        store.ensure_meta({"runs_per_cell": 4})  # idempotent
        with pytest.raises(ValueError, match="refusing to resume"):
            store.ensure_meta({"runs_per_cell": 8})

    def test_load_campaign_missing_cell_names_the_sweep(self, tmp_path):
        store = ShardStore(tmp_path / "s")
        with pytest.raises(KeyError, match="python -m repro sweep"):
            store.load_campaign("adpcm", ProtectionMode.PROTECTED, 2)

    def test_load_campaign_incomplete_cell_is_rejected(self, tmp_path,
                                                       reference_store):
        store = ShardStore(tmp_path / "s")
        mode = ProtectionMode.PROTECTED
        records = reference_store.load_records("adpcm", mode, 2)
        store.append_records("adpcm", mode, 2, records[:2])
        with pytest.raises(KeyError, match="incomplete"):
            store.load_campaign("adpcm", mode, 2, expect_runs=4)


class TestPaperGrid:
    def test_grid_covers_figure_and_table2_points(self):
        config = ExperimentConfig(suite_name="small", runs_per_cell=2)
        app = config.suite()["adpcm"]
        axis = grid_errors_axis(app)
        assert set(app.default_error_sweep) <= set(axis)
        assert {3, 56} <= set(axis)  # Table 2 operating points for adpcm
        cells = paper_grid(config)
        assert len(cells) == sum(
            2 * len(grid_errors_axis(config.suite()[name]))
            for name in config.suite()
        )

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError, match="unknown application"):
            paper_grid(CONFIG, apps=["dhrystone"])


class _InterruptAfter:
    """Progress hook that aborts the sweep after N chunk appends."""

    def __init__(self, chunks: int) -> None:
        self.remaining = chunks

    def __call__(self, message: str) -> None:
        self.remaining -= 1
        if self.remaining <= 0:
            raise KeyboardInterrupt(f"injected interruption at {message!r}")


class TestResumableSweep:
    def test_completed_sweep_resumes_as_noop(self, tmp_path, reference_store):
        root = tmp_path / "noop"
        _, first = run_sweep(root)
        orchestrator, second = run_sweep(root)
        assert second.runs_executed == 0
        assert second.runs_reused == first.runs_executed
        assert second.cells_skipped == second.cells_total
        assert all(status.complete for status in orchestrator.status())
        assert store_bytes(ShardStore(root)) == store_bytes(reference_store)

    def test_interrupted_sweep_resumes_bit_identically(self, tmp_path,
                                                       reference_store):
        root = tmp_path / "interrupted"
        # Interrupt mid-cell: chunk_size=2 with 4 runs/cell means chunk 3
        # lands halfway through the second cell.
        with pytest.raises(KeyboardInterrupt):
            run_sweep(root, progress=_InterruptAfter(3))
        interrupted = ShardStore(root)
        assert store_bytes(interrupted) != store_bytes(reference_store)

        _, resumed = run_sweep(root)
        assert 0 < resumed.runs_executed < 6 * 4
        assert store_bytes(interrupted) == store_bytes(reference_store)

    def test_interrupted_serial_sweep_resumed_on_socket_backend(
            self, tmp_path, reference_store):
        """The ISSUE 3 acceptance scenario: kill a serial sweep mid-cell,
        resume it on TCP workers, and the store must come out byte-identical
        to the uninterrupted serial sweep."""
        root = tmp_path / "cross-backend"
        with pytest.raises(KeyboardInterrupt):
            run_sweep(root, progress=_InterruptAfter(5))

        with spawn_workers(2) as addresses:
            campaign = CampaignConfig(
                runs=CONFIG.runs_per_cell, base_seed=CONFIG.base_seed,
                executor="socket", workers=addresses,
            )
            _, resumed = run_sweep(root, campaign=campaign)

        assert 0 < resumed.runs_executed < 6 * 4
        assert store_bytes(ShardStore(root)) == store_bytes(reference_store)


#: Stopping rule for the adaptive tests: at ±25pp a clean (all-completed
#: or all-failed) cell converges at 4 runs, comfortably inside the cap.
ADAPTIVE_RULE = StoppingRule(ci_width=25.0, floor=2, cap=8)


def run_adaptive(root, campaign=None, chunk_size=2, progress=None,
                 rule=ADAPTIVE_RULE, **overrides):
    grid = dict(GRID, **overrides)
    orchestrator = SweepOrchestrator(
        ShardStore(root), CONFIG, campaign=campaign, chunk_size=chunk_size,
        stopping=rule, progress=progress, **grid,
    )
    return orchestrator, orchestrator.run()


@pytest.fixture(scope="module")
def adaptive_reference(tmp_path_factory):
    """The uninterrupted serial adaptive sweep the others are compared to."""
    root = tmp_path_factory.mktemp("adaptive-reference")
    run_adaptive(root)
    return ShardStore(root)


class TestAdaptiveSweep:
    """ISSUE 5 tentpole: CI-driven adaptive cell sampling."""

    def test_every_cell_converges_within_floor_and_cap(self, adaptive_reference):
        store = adaptive_reference
        counts = {}
        for app, mode, errors, _path in store.shards():
            count = len(store.load_records(app, mode, errors))
            counts[(mode.value, errors)] = count
            assert ADAPTIVE_RULE.floor <= count <= ADAPTIVE_RULE.cap
        assert len(counts) == 6
        # Zero-error cells are deterministic successes; adaptive sampling
        # visibly stops them before the cap.
        assert counts[("protected", 0)] < ADAPTIVE_RULE.cap

    def test_meta_pins_rule_not_an_exact_run_count(self, adaptive_reference):
        meta = adaptive_reference.read_meta()
        assert meta["schema"] == "sweep-store-v2-adaptive"
        assert "runs_per_cell" not in meta
        assert StoppingRule.from_meta(meta) == ADAPTIVE_RULE

    def test_completed_adaptive_sweep_resumes_as_noop(self, tmp_path,
                                                      adaptive_reference):
        root = tmp_path / "noop"
        run_adaptive(root)
        orchestrator, second = run_adaptive(root)
        assert second.runs_executed == 0
        assert second.cells_skipped == second.cells_total
        statuses = orchestrator.status()
        assert all(status.complete and status.converged
                   for status in statuses)
        assert all(status.ci_half_width is not None for status in statuses)
        assert store_bytes(ShardStore(root)) == store_bytes(adaptive_reference)

    def test_store_is_chunk_size_independent(self, tmp_path,
                                             adaptive_reference):
        """The canonical run count is the minimal converged prefix, so
        the persisted bytes cannot depend on the execution chunking."""
        for chunk_size in (1, 5):
            root = tmp_path / f"chunk{chunk_size}"
            run_adaptive(root, chunk_size=chunk_size)
            assert store_bytes(ShardStore(root)) == store_bytes(
                adaptive_reference)

    def test_interrupted_adaptive_sweep_resumed_on_socket_backend(
            self, tmp_path, adaptive_reference):
        """The ISSUE 5 acceptance scenario: kill an adaptive serial sweep
        mid-cell, resume it on TCP workers (and a different chunk size),
        and the store must come out byte-identical to the uninterrupted
        serial adaptive sweep."""
        root = tmp_path / "cross-backend"
        with pytest.raises(KeyboardInterrupt):
            run_adaptive(root, progress=_InterruptAfter(3))
        assert store_bytes(ShardStore(root)) != store_bytes(adaptive_reference)

        with spawn_workers(2) as addresses:
            campaign = CampaignConfig(
                runs=CONFIG.runs_per_cell, base_seed=CONFIG.base_seed,
                executor="socket", workers=addresses,
            )
            _, resumed = run_adaptive(root, campaign=campaign, chunk_size=3)
        assert resumed.runs_executed > 0
        assert store_bytes(ShardStore(root)) == store_bytes(adaptive_reference)

    def test_resuming_with_a_different_rule_is_refused(self, tmp_path):
        root = tmp_path / "pin"
        run_adaptive(root, errors_axis=[0])
        with pytest.raises(StoreMismatchError):
            run_adaptive(root, errors_axis=[0],
                         rule=StoppingRule(ci_width=5.0, floor=2, cap=8))

    def test_fixed_and_adaptive_stores_never_resume_each_other(self, tmp_path):
        fixed_root = tmp_path / "fixed"
        run_sweep(fixed_root, errors_axis=[0])
        with pytest.raises(StoreMismatchError):
            run_adaptive(fixed_root, errors_axis=[0])
        adaptive_root = tmp_path / "adaptive"
        run_adaptive(adaptive_root, errors_axis=[0])
        with pytest.raises(StoreMismatchError):
            run_sweep(adaptive_root, errors_axis=[0])

    def test_non_contiguous_prefix_is_rejected(self, tmp_path,
                                               reference_store):
        root = tmp_path / "holes"
        store = ShardStore(root)
        records = reference_store.load_records("adpcm",
                                               ProtectionMode.PROTECTED, 2)
        store.append_records("adpcm", ProtectionMode.PROTECTED, 2,
                             [records[0], records[2]])
        with pytest.raises(ValueError, match="non-contiguous"):
            run_adaptive(root, errors_axis=[2])

    def test_unconverged_adaptive_cell_refuses_artefacts(self, tmp_path):
        """A cell interrupted past the floor but before convergence must
        not silently feed tables/figures: the store's pinned rule is the
        completeness contract, not a bare record count."""
        root = tmp_path / "unconverged"
        # chunk_size=1 and an interrupt after 2 chunks leaves the first
        # cell with exactly floor (2) records — floor met, CI still wider
        # than the 25pp target.
        with pytest.raises(KeyboardInterrupt):
            run_adaptive(root, chunk_size=1, progress=_InterruptAfter(2))
        store = ShardStore(root)
        cell = store.load_records("adpcm", ProtectionMode.PROTECTED, 0)
        assert len(cell) == ADAPTIVE_RULE.floor
        with pytest.raises(KeyError, match="unconverged"):
            store.load_campaign("adpcm", ProtectionMode.PROTECTED, 0,
                                expect_runs=ADAPTIVE_RULE.floor)

    def test_artefacts_render_ci_from_adaptive_store(self, tmp_path):
        """Tables and figures regenerated from an adaptive store carry
        the ``±`` confidence annotations (ISSUE 5 acceptance)."""
        config = ExperimentConfig(suite_name="small",
                                  runs_per_cell=ADAPTIVE_RULE.floor,
                                  base_seed=CONFIG.base_seed)
        store = ShardStore(tmp_path / "mcf")
        SweepOrchestrator(store, config, apps=["mcf"], errors_axis=[1],
                          include_table2=False, stopping=ADAPTIVE_RULE).run()

        table = table2_catastrophic_failures(
            config, apps=["mcf"], error_counts={"mcf": (1,)}, store=store)
        assert "±95% (prot.)" in table.headers
        assert all(value is not None
                   for value in table.column("±95% (prot.)"))
        assert "±" in table.to_text()
        assert "adaptive runs per cell" in table.to_text()

        figure = figure3_mcf(config, errors_axis=[1], store=store)
        failed = figure.series_by_label("% failed executions")
        assert failed.error_values is not None
        assert all(value is not None for value in failed.error_values)
        assert "±" in figure.to_table()


class TestArtefactsFromStore:
    def test_figure_from_store_matches_live(self, tmp_path):
        config = ExperimentConfig(suite_name="small", runs_per_cell=2,
                                  base_seed=CONFIG.base_seed)
        store = ShardStore(tmp_path / "mcf")
        SweepOrchestrator(store, config, apps=["mcf"],
                          modes=(ProtectionMode.PROTECTED,),
                          errors_axis=[0, 2], include_table2=False).run()
        from_store = figure3_mcf(config, errors_axis=[0, 2], store=store)
        live = figure3_mcf(config, errors_axis=[0, 2])
        assert from_store.x_values == live.x_values
        for stored_series, live_series in zip(from_store.series, live.series):
            assert stored_series.label == live_series.label
            assert stored_series.values == live_series.values

    def test_table2_from_store_matches_live(self, tmp_path):
        config = ExperimentConfig(suite_name="small", runs_per_cell=2,
                                  base_seed=CONFIG.base_seed)
        store = ShardStore(tmp_path / "adpcm")
        SweepOrchestrator(store, config, apps=["adpcm"],
                          errors_axis=[3], include_table2=False).run()
        counts = {"adpcm": (3,)}
        from_store = table2_catastrophic_failures(
            config, apps=["adpcm"], error_counts=counts, store=store)
        live = table2_catastrophic_failures(
            config, apps=["adpcm"], error_counts=counts)
        assert from_store.rows == live.rows

    def test_missing_cell_raises_instead_of_resimulating(self, tmp_path):
        config = ExperimentConfig(suite_name="small", runs_per_cell=2)
        store = ShardStore(tmp_path / "empty")
        with pytest.raises(KeyError):
            figure3_mcf(config, errors_axis=[0, 2], store=store)
