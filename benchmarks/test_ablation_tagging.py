"""Ablation benchmark: design choices of the control-data tagging pass.

DESIGN.md calls out two knobs beyond the paper's strict rule: protecting
memory-address operands and conservatively tracking memory.  This benchmark
quantifies how each choice changes the fraction of dynamic instructions
that may run on unreliable hardware (more protection = less opportunity).
"""

from repro.compiler.passes import ControlTaggingPass
from repro.core import format_table
from repro.sim import Machine


def _tagged_fraction(app, **options) -> float:
    program = app.program()
    ControlTaggingPass(**options).run(program)
    machine = Machine(program)
    app.apply_workload(machine, app.generate_workload(0))
    result = machine.run()
    fraction = 100.0 * result.statistics.tagged_fraction
    # Restore the default tagging so other benchmarks see canonical tags.
    ControlTaggingPass().run(program)
    return fraction


def test_ablation_tagging_options(benchmark, experiment_config, show):
    suite = experiment_config.suite()
    apps = [suite["adpcm"], suite["susan"], suite["mcf"]]

    def run_ablation():
        rows = []
        for app in apps:
            rows.append([
                app.name,
                _tagged_fraction(app),
                _tagged_fraction(app, protect_addresses=True),
                _tagged_fraction(app, protect_addresses=True, track_memory=True),
                _tagged_fraction(app, protect_stack_registers=False),
            ])
        return rows

    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    show(format_table(
        ["Application", "paper rule", "+protect addresses",
         "+track memory", "-protect sp/fp"],
        rows,
        title="Ablation: % dynamic instructions tagged low-reliability",
    ))
    for _, paper_rule, protect_addr, track_memory, no_stack in rows:
        assert track_memory <= protect_addr <= paper_rule <= no_stack + 1e-9
