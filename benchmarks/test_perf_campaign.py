"""Campaign performance benchmark: fork engine vs the full-run decoded path.

Times one injected campaign cell — the unit of work behind every data point
in the paper's figures — under the decoded, fork, and lockstep batch
engines and writes the numbers side by side to ``BENCH_campaign.json`` at
the repository root (the dedicated batch gate lives in
``benchmarks/test_perf_batch.py`` / ``BENCH_batch.json``).  The fork engine restores
the nearest golden checkpoint, replays only the divergence, and splices the
golden suffix back in on re-convergence, so the cell cost scales with how
much the injected faults actually change instead of with program length.

The two campaigns must produce **bit-identical** records (also asserted at
matrix scale in ``tests/test_fork_engine.py``); here the check guards the
timed configuration itself.  Smoke mode (``REPRO_BENCH_SMOKE=1``, used by
CI) shrinks the cell and relaxes the speedup floor; the full run uses a
24x24-pixel Susan cell of 240 runs and requires the >=5x the fork engine
is built to deliver.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.apps import create_app
from repro.core import CampaignConfig, CampaignRunner
from repro.sim import ProtectionMode

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_campaign.json"

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"

#: Benchmark cell: Susan edge detection, one soft error per run, control
#: data protected — the paper's central operating point, and a workload
#: where roughly half the faults are architecturally masked (so both the
#: checkpoint restore and the golden-suffix splice carry real weight).
APP_NAME = "susan"
APP_KWARGS = {"width": 16, "height": 16} if SMOKE else {"width": 24, "height": 24}
RUNS = 60 if SMOKE else 240
ERRORS = 1
MODE = ProtectionMode.PROTECTED
MIN_SPEEDUP = 1.5 if SMOKE else 5.0


def _time_cell(engine: str):
    """Run the benchmark cell on a cold application under ``engine``.

    The application is created fresh so each engine pays its own full
    setup: compilation, tagging, golden run, and (for the fork engine) the
    checkpoint-store capture are all inside the timed region.
    """
    app = create_app(APP_NAME, **APP_KWARGS)
    runner = CampaignRunner(
        app, CampaignConfig(runs=RUNS, base_seed=314, engine=engine)
    )
    start = time.perf_counter()
    cell = runner.run_campaign(ERRORS, MODE)
    elapsed = time.perf_counter() - start
    return cell, elapsed, app


def test_perf_campaign_writes_benchmark_json(show):
    decoded_cell, decoded_s, _ = _time_cell("decoded")
    fork_cell, fork_s, fork_app = _time_cell("fork")
    batch_cell, batch_s, _ = _time_cell("batch")

    identical = fork_cell.records == decoded_cell.records
    batch_identical = batch_cell.records == decoded_cell.records
    speedup = decoded_s / fork_s
    batch_speedup = decoded_s / batch_s
    store = fork_app.golden(0).checkpoint_store
    golden_executed = fork_app.golden(0).executed
    replay_fraction = (
        store.replayed_instructions / (store.forked_runs * golden_executed)
        if store is not None and store.forked_runs else None
    )

    report = {
        "schema": "campaign-bench-v1",
        "smoke": SMOKE,
        "cell": {
            "app": APP_NAME,
            "app_kwargs": APP_KWARGS,
            "runs": RUNS,
            "errors": ERRORS,
            "mode": MODE.value,
            "golden_instructions": golden_executed,
        },
        "decoded_s": round(decoded_s, 6),
        "fork_s": round(fork_s, 6),
        "batch_s": round(batch_s, 6),
        "speedup": round(speedup, 2),
        "batch_speedup": round(batch_speedup, 2),
        "identical_records": identical,
        "batch_identical_records": batch_identical,
        "fork": {
            "checkpoints": len(store.checkpoints) if store else 0,
            "interval": store.interval if store else 0,
            "forked_runs": store.forked_runs if store else 0,
            "spliced_runs": store.spliced_runs if store else 0,
            "replayed_instructions": store.replayed_instructions if store else 0,
            "replay_fraction": round(replay_fraction, 4) if replay_fraction is not None else None,
        },
        "outcomes": {
            "failures_pct": fork_cell.failure_percent,
            "acceptable_pct": fork_cell.acceptable_percent,
        },
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")

    show(
        f"campaign cell: {APP_NAME}{APP_KWARGS} x {RUNS} runs, "
        f"{ERRORS} error(s), {MODE.value}\n"
        f"  decoded (full runs): {decoded_s:8.3f}s\n"
        f"  fork (checkpointed): {fork_s:8.3f}s   -> {speedup:.2f}x\n"
        f"  batch (lockstep):    {batch_s:8.3f}s   -> {batch_speedup:.2f}x\n"
        f"  spliced {store.spliced_runs}/{store.forked_runs} runs, "
        f"replayed {100 * (replay_fraction or 0):.1f}% of golden length per run, "
        f"identical={identical} batch_identical={batch_identical}"
    )

    assert identical, "fork campaign diverged from the decoded runner"
    assert batch_identical, "batch campaign diverged from the decoded runner"
    assert speedup >= MIN_SPEEDUP, (
        f"fork-engine campaign speedup regressed to {speedup:.2f}x "
        f"(floor {MIN_SPEEDUP}x, smoke={SMOKE})"
    )
