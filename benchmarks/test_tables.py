"""Benchmarks regenerating the paper's tables (Tables 1-3)."""

from repro.experiments import (
    table1_applications,
    table2_catastrophic_failures,
    table3_low_reliability_instructions,
)

#: Error counts for the Table 2 benchmark.  The paper's own counts are kept
#: for the cheap applications; the very large Susan count is reduced so the
#: benchmark finishes quickly (the full value works, it is just slower).
TABLE2_BENCH_ERRORS = {
    "susan": (200,),
    "mpeg": (20,),
    "mcf": (1, 40),
    "blowfish": (2, 20),
    "gsm": (10, 40),
    "art": (4,),
    "adpcm": (3, 56),
}


def test_table1_applications(benchmark, experiment_config, show):
    table = benchmark.pedantic(table1_applications, args=(experiment_config,),
                               rounds=1, iterations=1)
    show(table.to_text())
    assert len(table.rows) == 7


def test_table2_catastrophic_failures(benchmark, experiment_config, show):
    table = benchmark.pedantic(
        table2_catastrophic_failures,
        kwargs={"config": experiment_config, "error_counts": TABLE2_BENCH_ERRORS},
        rounds=1, iterations=1)
    show(table.to_text())
    protected = table.column("% failures with protection")
    unprotected = table.column("% failures without protection")
    assert len(table.rows) >= 7
    # The paper's headline claim: protecting control data removes most
    # catastrophic failures.
    assert sum(protected) <= sum(unprotected)


def test_table3_low_reliability_instructions(benchmark, experiment_config, show):
    table = benchmark.pedantic(table3_low_reliability_instructions,
                               args=(experiment_config,), rounds=1, iterations=1)
    show(table.to_text())
    dynamic = dict(zip(table.column("Application"),
                       table.column("% low reliability (dynamic)")))
    assert all(0.0 < value < 100.0 for value in dynamic.values())
    # Qualitative ordering from the paper: ADPCM and Susan expose far more
    # low-reliability work than MCF and GSM.
    assert dynamic["adpcm"] > dynamic["mcf"]
    assert dynamic["susan"] > dynamic["gsm"]
