#!/usr/bin/env python
"""Benchmark regression gate: BENCH_*.json vs the committed baselines.

Two reports are gated:

* ``BENCH_interp.json`` (written by ``benchmarks/test_perf_interpreter.py``)
  against ``benchmarks/baseline_interp.json`` — per-app and total decoded
  engine speedups over the preserved seed interpreter;
* ``BENCH_campaign.json`` (written by ``benchmarks/test_perf_campaign.py``)
  against ``benchmarks/baseline_campaign.json`` — the fork engine's
  campaign-cell speedup over the full-run path, plus the bit-identity flag;
* ``BENCH_batch.json`` (written by ``benchmarks/test_perf_batch.py``)
  against ``benchmarks/baseline_batch.json`` — the lockstep batch engine's
  campaign-cell speedup over the fork engine, plus its bit-identity flag.

A measured speedup below ``baseline * (1 - tolerance)`` fails the gate
(exit 1).  The tolerance band is wide by default because CI machines are
noisy and smoke mode uses a single timing repetition — the gate exists to
catch a speedup getting *structurally* slower (a 12x speedup quietly
decaying to 4x), not 10% jitter.

Usage::

    python benchmarks/check_bench_regression.py [--tolerance 0.5]

Run both benchmarks first so the BENCH JSONs exist at the repository root.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

INTERP_BENCH_PATH = REPO_ROOT / "BENCH_interp.json"
INTERP_BASELINE_PATH = Path(__file__).with_name("baseline_interp.json")
CAMPAIGN_BENCH_PATH = REPO_ROOT / "BENCH_campaign.json"
CAMPAIGN_BASELINE_PATH = Path(__file__).with_name("baseline_campaign.json")
BATCH_BENCH_PATH = REPO_ROOT / "BENCH_batch.json"
BATCH_BASELINE_PATH = Path(__file__).with_name("baseline_batch.json")


def _baseline_block(bench: dict, baseline_path: Path) -> tuple:
    # Smoke-mode runs (shrunken workloads, one timing repetition) measure
    # systematically different speedups than full runs, so each mode is
    # gated against its own committed baseline — the tolerance band then
    # covers machine noise only, not the mode mismatch.
    mode = "smoke" if bench.get("smoke") else "full"
    return mode, json.loads(baseline_path.read_text())[mode]


def _gate_rows(title: str, rows, tolerance: float) -> list:
    """Print measured-vs-baseline rows; return the names that regressed."""
    failures = []
    print(f"{title} (tolerance band: -{tolerance:.0%})")
    for name, measured, expected in rows:
        floor = expected * (1.0 - tolerance)
        status = "ok" if measured >= floor else "REGRESSED"
        if measured < floor:
            failures.append(name)
        print(f"  {name:10s} measured {measured:6.2f}x  baseline {expected:6.2f}x"
              f"  floor {floor:6.2f}x  {status}")
    return failures


def check_interp(tolerance: float) -> int:
    bench = json.loads(INTERP_BENCH_PATH.read_text())
    mode, baseline = _baseline_block(bench, INTERP_BASELINE_PATH)

    missing = sorted(set(baseline["apps"]) - set(bench["apps"]))
    if missing:
        # An app silently vanishing from the benchmark would otherwise
        # shrink the gate's coverage without anyone noticing.
        print(f"FAIL: baseline apps missing from BENCH_interp.json: "
              f"{', '.join(missing)}", file=sys.stderr)
        return 1
    rows = [("TOTAL", bench["total"]["speedup"], baseline["total_speedup"])]
    rows += [
        (name, bench["apps"][name]["speedup"], expected)
        for name, expected in sorted(baseline["apps"].items())
    ]
    failures = _gate_rows(f"interpreter gate ({mode} baseline)", rows, tolerance)
    if failures:
        print(f"FAIL: interpreter speedup regression in {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


def check_campaign(tolerance: float) -> int:
    bench = json.loads(CAMPAIGN_BENCH_PATH.read_text())
    mode, baseline = _baseline_block(bench, CAMPAIGN_BASELINE_PATH)

    if not bench.get("identical_records", False):
        # The speedup is meaningless if the fork engine stopped being
        # bit-identical to the full-run path.
        print("FAIL: BENCH_campaign.json reports identical_records=false",
              file=sys.stderr)
        return 1
    failures = _gate_rows(f"campaign gate ({mode} baseline)",
                          [("fork-cell", bench["speedup"], baseline["speedup"])],
                          tolerance)
    if failures:
        print("FAIL: campaign fork-engine speedup regression", file=sys.stderr)
        return 1
    return 0


def check_batch(tolerance: float) -> int:
    bench = json.loads(BATCH_BENCH_PATH.read_text())
    mode, baseline = _baseline_block(bench, BATCH_BASELINE_PATH)

    if not bench.get("identical_records", False):
        # The speedup is meaningless if the batch engine stopped being
        # bit-identical to the fork-engine record stream.
        print("FAIL: BENCH_batch.json reports identical_records=false",
              file=sys.stderr)
        return 1
    failures = _gate_rows(f"batch gate ({mode} baseline)",
                          [("batch-cell", bench["speedup"], baseline["speedup"])],
                          tolerance)
    if failures:
        print("FAIL: campaign batch-engine speedup regression", file=sys.stderr)
        return 1
    return 0


#: The pytest invocation that (re)generates each gated BENCH report.
#: The reports are build artifacts — gitignored, never committed — so a
#: missing file means "run the benchmarks first", not a repo bug.
BENCH_SOURCES = {
    INTERP_BENCH_PATH: "python -m pytest benchmarks/test_perf_interpreter.py -q -s",
    CAMPAIGN_BENCH_PATH: "python -m pytest benchmarks/test_perf_campaign.py -q -s",
    BATCH_BENCH_PATH: "python -m pytest benchmarks/test_perf_batch.py -q -s",
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed fractional drop below baseline (default 0.5)")
    args = parser.parse_args()
    status = 0
    for path, check in ((INTERP_BENCH_PATH, check_interp),
                        (CAMPAIGN_BENCH_PATH, check_campaign),
                        (BATCH_BENCH_PATH, check_batch)):
        if not path.exists():
            print(f"{path.name} not found: the BENCH reports are generated "
                  f"(and gitignored), so run the benchmarks first:\n"
                  f"    {BENCH_SOURCES[path]}\n"
                  f"then re-run this gate.", file=sys.stderr)
            return 2
        status = max(status, check(args.tolerance))
    if status == 0:
        print("PASS: all speedups within the tolerance band")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
