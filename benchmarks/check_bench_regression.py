#!/usr/bin/env python
"""Benchmark regression gate: BENCH_interp.json vs the committed baseline.

Compares the decoded-engine speedups measured by
``benchmarks/test_perf_interpreter.py`` against
``benchmarks/baseline_interp.json`` and fails (exit 1) when any speedup
falls below ``baseline * (1 - tolerance)``.  The tolerance band is wide by
default because CI machines are noisy and smoke mode uses a single timing
repetition — the gate exists to catch the interpreter getting *structurally*
slower (a 12x speedup quietly decaying to 4x), not 10% jitter.

Usage::

    python benchmarks/check_bench_regression.py [--tolerance 0.5]

Run the interpreter benchmark first so BENCH_interp.json exists at the
repository root.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_interp.json"
BASELINE_PATH = Path(__file__).with_name("baseline_interp.json")


def check(tolerance: float) -> int:
    bench = json.loads(BENCH_PATH.read_text())
    # Smoke-mode runs (shrunken workloads, one timing repetition) measure
    # systematically different speedups than full runs, so each mode is
    # gated against its own committed baseline — the tolerance band then
    # covers machine noise only, not the mode mismatch.
    mode = "smoke" if bench.get("smoke") else "full"
    baseline = json.loads(BASELINE_PATH.read_text())[mode]

    failures = []
    missing = sorted(set(baseline["apps"]) - set(bench["apps"]))
    if missing:
        # An app silently vanishing from the benchmark would otherwise
        # shrink the gate's coverage without anyone noticing.
        print(f"FAIL: baseline apps missing from BENCH_interp.json: "
              f"{', '.join(missing)}", file=sys.stderr)
        return 1
    rows = [("TOTAL", bench["total"]["speedup"], baseline["total_speedup"])]
    rows += [
        (name, bench["apps"][name]["speedup"], expected)
        for name, expected in sorted(baseline["apps"].items())
    ]
    print(f"benchmark regression gate ({mode} baseline, tolerance band: -{tolerance:.0%})")
    for name, measured, expected in rows:
        floor = expected * (1.0 - tolerance)
        status = "ok" if measured >= floor else "REGRESSED"
        if measured < floor:
            failures.append(name)
        print(f"  {name:10s} measured {measured:6.2f}x  baseline {expected:6.2f}x"
              f"  floor {floor:6.2f}x  {status}")

    if failures:
        print(f"FAIL: speedup regression in {', '.join(failures)}", file=sys.stderr)
        return 1
    print("PASS: all speedups within the tolerance band")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed fractional drop below baseline (default 0.5)")
    args = parser.parse_args()
    if not BENCH_PATH.exists():
        print(f"missing {BENCH_PATH}; run benchmarks/test_perf_interpreter.py first",
              file=sys.stderr)
        return 2
    return check(args.tolerance)


if __name__ == "__main__":
    raise SystemExit(main())
