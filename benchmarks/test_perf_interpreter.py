"""Interpreter performance benchmark: decoded engine vs the seed interpreter.

Times the golden run of all seven applications under both execution engines
(the pre-decoded threaded-code engine and the preserved seed ``if/elif``
interpreter) plus a small fault-injection campaign, and writes the numbers
to ``BENCH_interp.json`` at the repository root so the interpreter's
performance trajectory is tracked PR-over-PR.

Runs in smoke mode (one timing repetition) when ``REPRO_BENCH_SMOKE=1`` is
set, which is what CI uses; locally the default three repetitions give more
stable numbers.  The parallel campaign is also cross-checked against the
serial runner — the records must be bit-identical.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.apps import small_suite
from repro.core import CampaignConfig, CampaignRunner
from repro.sim import Machine, ProtectionMode

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_interp.json"

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
REPEATS = 1 if SMOKE else 3


def _time_golden(app, engine: str) -> float:
    """Best-of-N wall time of one golden run under ``engine``."""
    program = app.program()
    workload = app.generate_workload(0)
    best = float("inf")
    for _ in range(REPEATS):
        machine = Machine(program)
        app.apply_workload(machine, workload)
        start = time.perf_counter()
        result = machine.run(engine=engine)
        elapsed = time.perf_counter() - start
        assert result.outcome == "completed", (app.name, engine, result.fault)
        best = min(best, elapsed)
    return best


def test_perf_interpreter_writes_benchmark_json(show):
    suite = small_suite()
    apps = {}
    total_decoded = 0.0
    total_reference = 0.0
    total_instructions = 0
    for name, app in suite.items():
        decoded_s = _time_golden(app, "decoded")
        reference_s = _time_golden(app, "reference")
        executed = app.golden(0).executed
        apps[name] = {
            "instructions": executed,
            "decoded_s": round(decoded_s, 6),
            "reference_s": round(reference_s, 6),
            "decoded_mips": round(executed / decoded_s / 1e6, 3),
            "reference_mips": round(executed / reference_s / 1e6, 3),
            "speedup": round(reference_s / decoded_s, 2),
        }
        total_decoded += decoded_s
        total_reference += reference_s
        total_instructions += executed

    overall_speedup = total_reference / total_decoded

    # Small campaign: serial vs parallel timing + bit-identity check.  Both
    # use the full-run decoded engine (the fork engine has its own benchmark
    # in test_perf_campaign.py) and bypass the auto-serial fallback so the
    # pool-startup overhead this cell measures stays visible.
    adpcm = suite["adpcm"]
    runs, errors, workers = (4, 4, 2) if SMOKE else (12, 4, 4)
    start = time.perf_counter()
    serial = CampaignRunner(
        adpcm, CampaignConfig(runs=runs, base_seed=17, engine="decoded")
    ).run_campaign(errors, ProtectionMode.PROTECTED)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = CampaignRunner(
        adpcm, CampaignConfig(runs=runs, base_seed=17, parallel=workers,
                              parallel_threshold=1, engine="decoded")
    ).run_campaign(errors, ProtectionMode.PROTECTED)
    parallel_s = time.perf_counter() - start
    identical = parallel.records == serial.records

    report = {
        "schema": "interp-bench-v1",
        "suite": "small",
        "smoke": SMOKE,
        "repeats": REPEATS,
        "apps": apps,
        "total": {
            "instructions": total_instructions,
            "decoded_s": round(total_decoded, 6),
            "reference_s": round(total_reference, 6),
            "decoded_mips": round(total_instructions / total_decoded / 1e6, 3),
            "reference_mips": round(total_instructions / total_reference / 1e6, 3),
            "speedup": round(overall_speedup, 2),
        },
        "campaign": {
            "app": "adpcm",
            "runs": runs,
            "errors": errors,
            "mode": "protected",
            "serial_s": round(serial_s, 6),
            "parallel_s": round(parallel_s, 6),
            "parallel_workers": workers,
            "identical_to_serial": identical,
        },
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")

    lines = [f"{'app':10s} {'dyn instr':>10s} {'decoded':>9s} {'seed':>9s} {'speedup':>8s}"]
    for name, row in apps.items():
        lines.append(
            f"{name:10s} {row['instructions']:>10,} {row['decoded_s']:>8.3f}s "
            f"{row['reference_s']:>8.3f}s {row['speedup']:>7.2f}x"
        )
    lines.append(f"{'TOTAL':10s} {total_instructions:>10,} {total_decoded:>8.3f}s "
                 f"{total_reference:>8.3f}s {overall_speedup:>7.2f}x")
    lines.append(f"campaign ({runs} runs): serial {serial_s:.3f}s, "
                 f"parallel({workers}) {parallel_s:.3f}s, identical={identical}")
    show("\n".join(lines))

    assert identical, "parallel campaign diverged from the serial runner"
    # The decoded engine must be decisively faster than the seed interpreter
    # (the tracked JSON carries the precise number; >=3x expected, the
    # assertion leaves headroom for noisy CI machines).
    assert overall_speedup >= 2.0, f"speedup regressed to {overall_speedup:.2f}x"
