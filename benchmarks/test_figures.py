"""Benchmarks regenerating the paper's figures (Figures 1-6)."""

from repro.experiments import (
    figure1_susan,
    figure2_mpeg,
    figure3_mcf,
    figure4_blowfish,
    figure5_gsm,
    figure6_art,
)


def test_figure1_susan(benchmark, experiment_config, show):
    figure = benchmark.pedantic(
        figure1_susan,
        kwargs={"config": experiment_config, "errors_axis": [0, 20, 60, 150, 400]},
        rounds=1, iterations=1)
    show(figure.to_table())
    on = figure.series_by_label("PSNR (analysis ON) [dB]").values
    off = figure.series_by_label("PSNR (analysis OFF) [dB]").values
    assert on[0] == 100.0
    # At the highest error count, protection keeps PSNR at or above the
    # unprotected value (when unprotected runs complete at all).
    assert off[-1] is None or on[-1] >= off[-1]


def test_figure2_mpeg(benchmark, experiment_config, show):
    figure = benchmark.pedantic(
        figure2_mpeg,
        kwargs={"config": experiment_config, "errors_axis": [0, 2, 8, 16]},
        rounds=1, iterations=1)
    show(figure.to_table())
    bad_frames = figure.series_by_label("% bad frames").values
    assert bad_frames[0] == 0.0


def test_figure3_mcf(benchmark, experiment_config, show):
    figure = benchmark.pedantic(
        figure3_mcf,
        kwargs={"config": experiment_config, "errors_axis": [0, 1, 5, 20]},
        rounds=1, iterations=1)
    show(figure.to_table())
    optimal = figure.series_by_label("% optimal schedules found").values
    assert optimal[0] == 100.0
    assert optimal[-1] <= optimal[0]


def test_figure4_blowfish(benchmark, experiment_config, show):
    figure = benchmark.pedantic(
        figure4_blowfish,
        kwargs={"config": experiment_config, "errors_axis": [0, 2, 10, 40]},
        rounds=1, iterations=1)
    show(figure.to_table())
    bytes_correct = figure.series_by_label("% bytes correct").values
    assert bytes_correct[0] == 100.0
    assert bytes_correct[-1] <= bytes_correct[0]


def test_figure5_gsm(benchmark, experiment_config, show):
    figure = benchmark.pedantic(
        figure5_gsm,
        kwargs={"config": experiment_config, "errors_axis": [0, 10, 40]},
        rounds=1, iterations=1)
    show(figure.to_table())
    loss = figure.series_by_label("SNR loss [dB]").values
    assert loss[0] == 0.0


def test_figure6_art(benchmark, experiment_config, show):
    figure = benchmark.pedantic(
        figure6_art,
        kwargs={"config": experiment_config, "errors_axis": [0, 1, 2, 4]},
        rounds=1, iterations=1)
    show(figure.to_table())
    recognised = figure.series_by_label("% images recognised").values
    assert recognised[0] == 100.0
