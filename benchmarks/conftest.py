"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures with the
experiment harness and prints the resulting rows/series, so running

    pytest benchmarks/ --benchmark-only -s

both times the harness and shows the reproduced data.  The configurations
are deliberately small (small workload suite, a few runs per cell) so the
whole harness completes in minutes on a laptop; pass ``--repro-runs`` to
increase the statistical quality.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig


def pytest_addoption(parser):
    parser.addoption("--repro-runs", action="store", type=int, default=4,
                     help="injected runs per measurement cell")
    parser.addoption("--repro-suite", action="store", default="small",
                     choices=("small", "standard"),
                     help="workload suite used by the experiment benchmarks")


@pytest.fixture(scope="session")
def experiment_config(request) -> ExperimentConfig:
    return ExperimentConfig(
        suite_name=request.config.getoption("--repro-suite"),
        runs_per_cell=request.config.getoption("--repro-runs"),
    )


@pytest.fixture(scope="session")
def show():
    """Print a reproduced table/figure below the benchmark output."""
    def _show(text: str) -> None:
        print("\n" + text + "\n")
    return _show
