"""Batch-engine performance benchmark: lockstep cell vs the fork engine.

Times one injected campaign cell under ``engine="fork"`` (PR 2's
checkpoint-and-splice path, one run at a time) and ``engine="batch"`` (the
numpy lockstep engine of :mod:`repro.sim.batch`, which walks the golden
trace once and carries every run of the cell as a divergence column), and
writes the numbers to ``BENCH_batch.json`` at the repository root.

The two campaigns must produce **bit-identical** records (also asserted at
matrix scale in ``tests/test_fork_engine.py``); here the check guards the
timed configuration itself.  Smoke mode (``REPRO_BENCH_SMOKE=1``, used by
CI) shrinks the cell and relaxes the speedup floor; the full run uses the
24x24-pixel Susan cell of 240 runs — the same cell ``BENCH_campaign.json``
reports — and requires the >=10x over the fork engine the batch engine is
built to deliver.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.apps import create_app
from repro.core import CampaignConfig, CampaignRunner
from repro.sim import ProtectionMode

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_batch.json"

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"

#: Benchmark cell: identical to ``benchmarks/test_perf_campaign.py`` so the
#: fork timing is directly comparable across the two reports.
APP_NAME = "susan"
APP_KWARGS = {"width": 16, "height": 16} if SMOKE else {"width": 24, "height": 24}
RUNS = 60 if SMOKE else 240
ERRORS = 1
MODE = ProtectionMode.PROTECTED
MIN_SPEEDUP = 4.0 if SMOKE else 10.0


def _time_cell(engine: str):
    """Run the benchmark cell on a pre-warmed application under ``engine``.

    Compilation, tagging, the golden run, and the checkpoint-store capture
    happen *outside* the timed region: a sweep pays that setup once per
    application and then executes many cells against it, so per-cell
    throughput — the number this gate defends — is the cell alone.  (The
    cold-start comparison lives in ``benchmarks/test_perf_campaign.py``.)
    """
    app = create_app(APP_NAME, **APP_KWARGS)
    runner = CampaignRunner(
        app, CampaignConfig(runs=RUNS, base_seed=314, engine=engine)
    )
    runner.warm_goldens()
    start = time.perf_counter()
    cell = runner.run_campaign(ERRORS, MODE)
    elapsed = time.perf_counter() - start
    return cell, elapsed, app


def test_perf_batch_writes_benchmark_json(show):
    fork_cell, fork_s, _ = _time_cell("fork")
    batch_cell, batch_s, batch_app = _time_cell("batch")

    identical = batch_cell.records == fork_cell.records
    speedup = fork_s / batch_s
    store = batch_app.golden(0).checkpoint_store
    retired = store.batch_retired_runs if store is not None else 0

    report = {
        "schema": "batch-bench-v1",
        "smoke": SMOKE,
        "cell": {
            "app": APP_NAME,
            "app_kwargs": APP_KWARGS,
            "runs": RUNS,
            "errors": ERRORS,
            "mode": MODE.value,
            "golden_instructions": batch_app.golden(0).executed,
        },
        "fork_s": round(fork_s, 6),
        "batch_s": round(batch_s, 6),
        "speedup": round(speedup, 2),
        "identical_records": identical,
        "batch": {
            # Lanes the lockstep engine could not carry and handed to the
            # fork engine's scalar path (0 on this cell: every divergence
            # stays data-only, the paper's point about protecting control).
            "retired_runs": retired,
            "batch_size": 256,
        },
        "outcomes": {
            "failures_pct": batch_cell.failure_percent,
            "acceptable_pct": batch_cell.acceptable_percent,
        },
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")

    show(
        f"batch cell: {APP_NAME}{APP_KWARGS} x {RUNS} runs, "
        f"{ERRORS} error(s), {MODE.value}\n"
        f"  fork  (checkpointed): {fork_s:8.3f}s\n"
        f"  batch (lockstep):     {batch_s:8.3f}s   -> {speedup:.2f}x\n"
        f"  retired {retired}/{RUNS} lanes to the scalar path, "
        f"identical={identical}"
    )

    assert identical, "batch campaign diverged from the fork runner"
    assert speedup >= MIN_SPEEDUP, (
        f"batch-engine campaign speedup regressed to {speedup:.2f}x "
        f"(floor {MIN_SPEEDUP}x, smoke={SMOKE})"
    )
